//! `tricheck` — the command-line interface to the full-stack verifier.
//!
//! ```text
//! tricheck list [FAMILY]                      list suite tests (optionally one family)
//! tricheck show NAME                          print a test: program, target, C11 verdict
//! tricheck compile NAME [--isa B] [--spec V]  print the compiled RISC-V program
//! tricheck verify NAME [--model M] [--isa B] [--spec V]
//!                                             run the full toolflow on one test
//! tricheck diagnose NAME [--model M] [--isa B] [--spec V]
//!                                             verify + witness / per-axiom analysis
//! tricheck dot NAME [--model M] [--isa B] [--spec V]
//!                                             emit a Graphviz graph of the witness
//! tricheck sweep [FAMILY] [--threads N] [--cache-stats] [--outcomes] [--power]
//!                [--x86] [--shards N] [--cache-dir PATH]
//!                [--metrics-json FILE] [--progress] [--trace FILE]
//!                [--model FILE | --stack FILE]
//!                                             Figure-15-style chart for a family
//! tricheck file PATH [--model M] [--isa B] [--spec V]
//!                                             parse a .litmus file and verify it
//! tricheck lint FILE [--json] [--deny-warnings]
//!                                             static-analysis pass over a model or
//!                                             stack file (exit 1 on errors, 2 on
//!                                             warnings under --deny-warnings)
//!
//! Every option is checked against the subcommand it is given to:
//! unknown `--flags` and flags that do not apply to the subcommand are
//! rejected with an error naming the flag, never silently ignored.
//!
//! options: --isa base|base+a    (default base)
//!          --spec curr|ours     (default curr)
//!          --model WR|rWR|rWM|rMM|nWR|nMM|A9like   (default nMM)
//!                               or a path to a herd-style model file
//!                               (see `models/x86-tso.cat`); for `sweep`
//!                               the value must be a model file, which is
//!                               judged under all four C11→RISC-V
//!                               mappings
//!          --stack FILE         (sweep only) load a whole-stack
//!                               definition file — compiler mapping
//!                               tables plus a model section (see
//!                               `models/x86-tso.stack`) — and sweep the
//!                               family through it
//!          --threads N          sweep worker threads (default: all cores;
//!                               1 = deterministic serial run; with
//!                               --shards, threads *per shard*, default
//!                               cores / shards)
//!          --cache-stats        print the shared-engine cache counters
//!                               after a sweep (plus persistent-store
//!                               counters when --cache-dir is set)
//!          --outcomes           sweep in full-outcome-set mode: compare
//!                               every C11-permitted outcome with every
//!                               µarch-observable one, not just the target
//!          --power              sweep the §7 compiler study instead of
//!                               Figure 15: {leading-sync, trailing-sync}
//!                               C11→Power mappings × the ARMv7 models
//!          --shards N           deal the sweep across N worker processes
//!                               by program fingerprint range (1 = run
//!                               in-process, no spawning)
//!          --cache-dir PATH     persist execution spaces and C11 verdicts
//!                               in PATH (created if missing) so repeated
//!                               sweeps skip enumeration; shared by all
//!                               shards
//!          --metrics-json FILE  write the structured sweep metrics report
//!                               (tricheck-metrics/v1 JSON: per-phase
//!                               timings with p50/p95/max, counters,
//!                               per-stack and per-worker breakdowns)
//!          --progress           live progress line on stderr (tests
//!                               done/total, current phase, ETA); stdout
//!                               output is untouched
//!          --trace FILE         write a chrome://tracing JSON timeline of
//!                               every recorded span
//!          --json               (lint only) emit the report as a
//!                               tricheck-lint/v1 JSON document on stdout
//!          --deny-warnings      (lint only) exit 2 when warnings remain
//!          --allow-lint-errors  (sweep only) sweep a --model/--stack file
//!                               even when the lint pass finds error-level
//!                               defects (statically-empty relations,
//!                               vacuous axioms)
//! ```
//!
//! There is also a hidden `shard-worker` subcommand — the child half of
//! the `--shards` protocol (job on stdin, result on stdout). It is an
//! implementation detail of `tricheck-dist`, not a user command.

use std::process::ExitCode;

use tricheck::core::explain::diagnose;
use tricheck::core::report;
use tricheck::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  tricheck list [FAMILY]
  tricheck show NAME
  tricheck compile NAME [--isa base|base+a] [--spec curr|ours]
  tricheck verify NAME [--model M] [--isa base|base+a] [--spec curr|ours]
  tricheck diagnose NAME [--model M] [--isa base|base+a] [--spec curr|ours]
  tricheck dot NAME [--model M] [--isa base|base+a] [--spec curr|ours]
  tricheck sweep [FAMILY] [--threads N] [--cache-stats] [--outcomes] [--power]
                 [--x86] [--shards N] [--cache-dir PATH]
                 [--metrics-json FILE] [--progress] [--trace FILE]
                 [--model FILE | --stack FILE]
  tricheck sweep --list-models [--stack FILE]
  tricheck file PATH [--model M] [--isa base|base+a] [--spec curr|ours]
  tricheck lint FILE [--json] [--deny-warnings]

models: WR rWR rWM rMM nWR nMM A9like (default nMM), or a path to a
        herd-style model file (models/x86-tso.cat is a worked example);
        sweep only accepts the file form, judging it under all four
        C11→RISC-V mappings
stacks: sweep --stack FILE loads a whole-stack definition file — named
        compiler-mapping tables plus a model section (models/x86-tso.stack
        is a worked example) — and sweeps the family through every
        mapping it defines
sweeps: --threads 1 gives a deterministic serial run; --cache-stats prints
        the shared execution-space engine's cache counters; --outcomes
        compares full outcome sets instead of the target outcome (the
        stronger verify_full equivalence, at witness-mode cost); --power
        runs the §7 compiler study ({leading,trailing}-sync C11→Power
        mappings on the ARMv7 models) instead of the RISC-V Figure 15;
        --x86 runs the x86 study ({sc-atomics,relaxed} C11→x86 mappings
        on the IR-defined TSO model); --list-models prints every
        registered stack (ISA, mapping, model, IR axioms) and exits;
        --shards N deals the sweep across N worker processes (1 = in
        process); --cache-dir PATH persists execution spaces and C11
        verdicts across runs (and across shards); --metrics-json FILE
        writes the structured tricheck-metrics/v1 report; --progress
        renders a live stderr progress line; --trace FILE writes a
        chrome://tracing timeline
lint:   runs the semantic static-analysis pass (E001/E002 statically-empty
        relations and vacuous axioms, W001-W004 dead definitions, subsumed
        axioms, shadow-adjacent names, unreachable mapping rows) over a
        model or stack file; --json emits a tricheck-lint/v1 document;
        --deny-warnings makes warnings exit 2; sweep --model/--stack runs
        the same pass and refuses error-level findings unless
        --allow-lint-errors is given";

/// Every option the CLI knows about, in the order the usage text lists
/// them. Used both to reject unknown `--flags` (with a nearest-match
/// hint) and to check per-subcommand applicability.
const ALL_FLAGS: &[&str] = &[
    "--isa",
    "--spec",
    "--model",
    "--stack",
    "--threads",
    "--cache-stats",
    "--outcomes",
    "--power",
    "--x86",
    "--list-models",
    "--shards",
    "--cache-dir",
    "--metrics-json",
    "--progress",
    "--trace",
    "--json",
    "--deny-warnings",
    "--allow-lint-errors",
];

#[derive(Debug)]
struct Options {
    isa: RiscvIsa,
    spec: SpecVersion,
    model: String,
    stack: Option<String>,
    threads: Option<usize>,
    cache_stats: bool,
    outcomes: bool,
    power: bool,
    x86: bool,
    list_models: bool,
    shards: Option<usize>,
    cache_dir: Option<String>,
    metrics_json: Option<String>,
    progress: bool,
    trace_out: Option<String>,
    json: bool,
    deny_warnings: bool,
    allow_lint_errors: bool,
    /// The flags actually given on the command line (canonical
    /// spellings), so subcommands can reject the ones that do not apply
    /// to them instead of silently ignoring them.
    given: Vec<&'static str>,
}

impl Options {
    fn was_given(&self, flag: &str) -> bool {
        self.given.contains(&flag)
    }
}

fn parse_options(args: &[String]) -> Result<(Vec<&String>, Options), String> {
    let mut opts = Options {
        isa: RiscvIsa::Base,
        spec: SpecVersion::Curr,
        model: "nMM".to_string(),
        stack: None,
        threads: None,
        cache_stats: false,
        outcomes: false,
        power: false,
        x86: false,
        list_models: false,
        shards: None,
        cache_dir: None,
        metrics_json: None,
        progress: false,
        trace_out: None,
        json: false,
        deny_warnings: false,
        allow_lint_errors: false,
        given: Vec::new(),
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(flag) = ALL_FLAGS.iter().find(|f| **f == arg.as_str()) {
            opts.given.push(flag);
        }
        match arg.as_str() {
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad thread count '{v}'"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                opts.threads = Some(n);
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad shard count '{v}'"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
                opts.shards = Some(n);
            }
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir needs a path")?;
                opts.cache_dir = Some(v.clone());
            }
            "--metrics-json" => {
                let v = it.next().ok_or("--metrics-json needs a file path")?;
                opts.metrics_json = Some(v.clone());
            }
            "--trace" => {
                let v = it.next().ok_or("--trace needs a file path")?;
                opts.trace_out = Some(v.clone());
            }
            "--progress" => opts.progress = true,
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--allow-lint-errors" => opts.allow_lint_errors = true,
            "--cache-stats" => opts.cache_stats = true,
            "--outcomes" => opts.outcomes = true,
            "--power" => opts.power = true,
            "--x86" => opts.x86 = true,
            "--list-models" => opts.list_models = true,
            "--isa" => {
                let v = it.next().ok_or("--isa needs a value")?;
                opts.isa = match v.to_lowercase().as_str() {
                    "base" => RiscvIsa::Base,
                    "base+a" | "basea" | "base-a" => RiscvIsa::BaseA,
                    other => return Err(format!("unknown ISA '{other}'")),
                };
            }
            "--spec" => {
                let v = it.next().ok_or("--spec needs a value")?;
                opts.spec = match v.to_lowercase().as_str() {
                    "curr" | "current" => SpecVersion::Curr,
                    "ours" | "refined" => SpecVersion::Ours,
                    other => return Err(format!("unknown spec version '{other}'")),
                };
            }
            "--model" => {
                opts.model = it.next().ok_or("--model needs a value")?.clone();
            }
            "--stack" => {
                opts.stack = Some(it.next().ok_or("--stack needs a file path")?.clone());
            }
            other if other.starts_with("--") => return Err(unknown_flag(other)),
            _ => positional.push(arg),
        }
    }
    Ok((positional, opts))
}

/// The rejection message for a `--flag` the CLI does not know, with a
/// nearest-match hint when the typo is close to a real option.
fn unknown_flag(flag: &str) -> String {
    let nearest = ALL_FLAGS
        .iter()
        .map(|known| (edit_distance(flag, known), known))
        .min()
        .filter(|(d, _)| *d <= 3);
    match nearest {
        Some((_, known)) => format!("unknown option '{flag}' (did you mean '{known}'?)"),
        None => format!("unknown option '{flag}'"),
    }
}

/// Levenshtein distance, for the `unknown_flag` hint.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let subst = prev[j] + usize::from(ca != cb);
            row.push(subst.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// Rejects options that do not apply to the given subcommand. Flags are
/// parsed globally (so `--model` can mean a µarch model for `verify` and
/// a model file for `sweep`), but each subcommand only accepts its own
/// set — anything else errors instead of being silently ignored.
fn check_flags_apply(command: &str, opts: &Options) -> Result<(), String> {
    let allowed: &[&str] = match command {
        "compile" => &["--isa", "--spec"],
        "verify" | "diagnose" | "dot" | "file" => &["--model", "--isa", "--spec"],
        "lint" => &["--json", "--deny-warnings"],
        "sweep" => &[
            "--isa",
            "--spec",
            "--model",
            "--stack",
            "--threads",
            "--cache-stats",
            "--outcomes",
            "--power",
            "--x86",
            "--list-models",
            "--shards",
            "--cache-dir",
            "--metrics-json",
            "--progress",
            "--trace",
            "--allow-lint-errors",
        ],
        // list, show, shard-worker take no options.
        "list" | "show" | "shard-worker" => &[],
        // An unknown command: let the dispatcher report it as such.
        _ => return Ok(()),
    };
    for flag in &opts.given {
        if !allowed.contains(flag) {
            return Err(format!(
                "'{flag}' does not apply to the '{command}' command"
            ));
        }
    }
    Ok(())
}

fn model_by_name(name: &str, spec: SpecVersion) -> Result<UarchModel, String> {
    let model = match name.to_lowercase().as_str() {
        "wr" => UarchModel::wr(spec),
        "rwr" => UarchModel::rwr(spec),
        "rwm" => UarchModel::rwm(spec),
        "rmm" => UarchModel::rmm(spec),
        "nwr" => UarchModel::nwr(spec),
        "nmm" => UarchModel::nmm(spec),
        "a9like" | "a9" => UarchModel::a9like(spec),
        other => {
            return Err(format!(
                "unknown model '{other}' (expected one of WR rWR rWM rMM nWR nMM A9like, \
                 or a path to a model file)"
            ))
        }
    };
    Ok(model)
}

/// Resolves `--model` for the single-test commands: a value naming an
/// existing file is parsed as a herd-style model file; anything else is
/// looked up as a built-in µarch model name.
fn resolve_model(opts: &Options) -> Result<UarchModel, String> {
    let path = std::path::Path::new(&opts.model);
    if path.is_file() {
        let ir = tricheck::core::load_model_file(path).map_err(|e| e.to_string())?;
        Ok(UarchModel::from_ir(ir))
    } else {
        model_by_name(&opts.model, opts.spec)
    }
}

fn find_test(name: &str) -> Result<LitmusTest, String> {
    // Named figure tests first, then the full generated suite.
    let named = [
        suite::fig3_wrc(),
        suite::fig4_iriw_sc(),
        suite::fig11_mp_roach_motel(),
        suite::fig13_mp_lazy(),
    ];
    if let Some(t) = named.iter().find(|t| t.name() == name) {
        return Ok(t.clone());
    }
    suite::full_suite()
        .into_iter()
        .find(|t| t.name() == name)
        .ok_or_else(|| format!("no litmus test named '{name}' (try `tricheck list`)"))
}

fn format_c11_program(test: &LitmusTest) -> String {
    use tricheck::litmus::{Expr, Instr, Loc};
    let mut out = String::new();
    for (tid, thread) in test.program().threads().iter().enumerate() {
        out.push_str(&format!("T{tid}:\n"));
        for instr in thread {
            let line = match instr {
                Instr::Read { dst, addr, ann } => match addr {
                    Expr::Const(a) => format!("{dst} = ld({}, {ann})", Loc(*a)),
                    Expr::Reg(r) => format!("{dst} = ld([{r}], {ann})"),
                },
                Instr::Write { addr, val, ann } => match addr {
                    Expr::Const(a) => format!("st({}, {val}, {ann})", Loc(*a)),
                    Expr::Reg(r) => format!("st([{r}], {val}, {ann})"),
                },
                Instr::Rmw { dst, addr, ann, .. } => match addr {
                    Expr::Const(a) => format!("{dst} = rmw({}, {ann})", Loc(*a)),
                    Expr::Reg(r) => format!("{dst} = rmw([{r}], {ann})"),
                },
                Instr::Fence { ann } => format!("fence({ann})"),
            };
            out.push_str("  ");
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

fn run(args: &[String]) -> Result<u8, String> {
    let (positional, opts) = parse_options(args)?;
    let mut pos = positional.into_iter();
    let command = pos.next().map(String::as_str).ok_or("no command given")?;
    check_flags_apply(command, &opts)?;
    match command {
        "list" => {
            let family = pos.next().cloned();
            let mut count = 0;
            for t in suite::full_suite() {
                if family.as_deref().is_none_or(|f| t.family() == f) {
                    println!("{}", t.name());
                    count += 1;
                }
            }
            eprintln!("({count} tests)");
            Ok(0)
        }
        "show" => {
            let name = pos.next().ok_or("show needs a test name")?;
            let test = find_test(name)?;
            println!("{}", format_c11_program(&test));
            println!("target outcome: {}", test.target());
            let c11 = C11Model::new();
            println!(
                "C11 verdict: {}",
                match c11.judge(&test) {
                    C11Verdict::Permitted => "permitted",
                    C11Verdict::Forbidden => "forbidden",
                }
            );
            Ok(0)
        }
        "compile" => {
            let name = pos.next().ok_or("compile needs a test name")?;
            let test = find_test(name)?;
            let mapping = riscv_mapping(opts.isa, opts.spec);
            let compiled = compile(&test, mapping).map_err(|e| e.to_string())?;
            println!("mapping: {}", mapping.name());
            print!("{}", format_program(compiled.program(), Asm::RiscV));
            Ok(0)
        }
        "verify" => {
            let name = pos.next().ok_or("verify needs a test name")?;
            let test = find_test(name)?;
            let mapping = riscv_mapping(opts.isa, opts.spec);
            let model = resolve_model(&opts)?;
            let stack = TriCheck::new(mapping, model);
            let result = stack.verify(&test).map_err(|e| e.to_string())?;
            println!("{result}");
            Ok(0)
        }
        "diagnose" => {
            let name = pos.next().ok_or("diagnose needs a test name")?;
            let test = find_test(name)?;
            let mapping = riscv_mapping(opts.isa, opts.spec);
            let model = resolve_model(&opts)?;
            let d = diagnose(mapping, &model, &test).map_err(|e| e.to_string())?;
            print!("{d}");
            Ok(0)
        }
        "dot" => {
            let name = pos.next().ok_or("dot needs a test name")?;
            let test = find_test(name)?;
            let mapping = riscv_mapping(opts.isa, opts.spec);
            let model = resolve_model(&opts)?;
            let d = diagnose(mapping, &model, &test).map_err(|e| e.to_string())?;
            match d.witness_dot {
                Some(dot) => {
                    print!("{dot}");
                    Ok(0)
                }
                None => Err(format!(
                    "target outcome of '{name}' is not observable on {} — no witness to draw",
                    opts.model
                )),
            }
        }
        "file" => {
            let path = pos.next().ok_or("file needs a path")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let test = tricheck::litmus::format::parse_litmus(&text).map_err(|e| e.to_string())?;
            println!("{}", format_c11_program(&test));
            println!("target outcome: {}", test.target());
            let mapping = riscv_mapping(opts.isa, opts.spec);
            let model = resolve_model(&opts)?;
            let d = diagnose(mapping, &model, &test).map_err(|e| e.to_string())?;
            print!("{d}");
            Ok(0)
        }
        "lint" => {
            let path = pos.next().ok_or("lint needs a model or stack file path")?;
            let (origin, diags, rules) =
                tricheck::core::lint_path(std::path::Path::new(path)).map_err(|e| e.to_string())?;
            let errors = diags
                .iter()
                .filter(|d| d.severity == tricheck::rel::lint::Severity::Error)
                .count();
            let warnings = diags.len() - errors;
            if opts.json {
                println!("{}", lint_json(&origin, rules, &diags));
            } else {
                for d in &diags {
                    eprintln!("{origin}:{d}");
                }
                if diags.is_empty() {
                    println!("{origin}: clean ({rules} rules checked)");
                } else {
                    println!(
                        "{origin}: {errors} error(s), {warnings} warning(s) \
                         ({rules} rules checked)"
                    );
                }
            }
            if errors > 0 {
                Ok(1)
            } else if opts.deny_warnings && warnings > 0 {
                Ok(2)
            } else {
                Ok(0)
            }
        }
        "sweep" => {
            // Runtime-loaded stacks and models, checked before anything
            // else so `--list-models` can catalog them too.
            if opts.stack.is_some() && opts.was_given("--model") {
                return Err(
                    "--stack and --model cannot be combined: a stack file already \
                     names its model"
                        .to_string(),
                );
            }
            let mut registry = tricheck::core::StackRegistry::new();
            let mut lint_counters: Option<(u64, u64)> = None;
            if let Some(path) = &opts.stack {
                let loaded = registry
                    .load(std::path::Path::new(path))
                    .map_err(|e| e.to_string())?;
                gate_lints(&loaded.origin, &loaded.lints, opts.allow_lint_errors)?;
                lint_counters = Some((loaded.rules_checked as u64, loaded.lints.len() as u64));
            }
            let model_stacks = if opts.was_given("--model") {
                let path = std::path::Path::new(&opts.model);
                if !path.is_file() {
                    return Err(format!(
                        "sweep --model takes a path to a model file, and '{}' is not \
                         a file (built-in µarch model names apply to \
                         verify/diagnose/dot/file)",
                        opts.model
                    ));
                }
                let (ir, diags) =
                    tricheck::core::load_model_file_linted(path).map_err(|e| e.to_string())?;
                gate_lints(&opts.model, &diags, opts.allow_lint_errors)?;
                lint_counters = Some((tricheck::rel::lint::MODEL_RULES as u64, diags.len() as u64));
                Some((ir.name().to_string(), tricheck::core::stacks_for_model(&ir)))
            } else {
                None
            };
            if opts.list_models {
                let mut extra: Vec<(String, &[tricheck::core::MatrixStack<'_>])> = Vec::new();
                for loaded in registry.loaded() {
                    let title = format!("{} (loaded from {})", loaded.name, loaded.origin);
                    extra.push((title, &loaded.stacks));
                }
                if let Some((name, stacks)) = &model_stacks {
                    extra.push((format!("{name} (loaded from {})", opts.model), stacks));
                }
                print!("{}", list_models(&extra));
                return Ok(0);
            }
            let custom = !registry.is_empty() || model_stacks.is_some();
            if custom && (opts.power || opts.x86) {
                return Err(
                    "--power/--x86 select built-in matrices and cannot be combined \
                     with --stack or --model FILE"
                        .to_string(),
                );
            }
            if custom && (opts.shards.is_some() || opts.cache_dir.is_some()) {
                return Err(
                    "--shards/--cache-dir cannot be combined with --stack or --model \
                     FILE: sharded sweeps only run the built-in matrices"
                        .to_string(),
                );
            }
            let family = pos.next().cloned().unwrap_or_else(|| "wrc".to_string());
            let tests: Vec<LitmusTest> = suite::full_suite()
                .into_iter()
                .filter(|t| t.family() == family)
                .collect();
            if tests.is_empty() {
                return Err(format!("unknown family '{family}'"));
            }
            if opts.power && opts.x86 {
                return Err("--power and --x86 are mutually exclusive".to_string());
            }
            if opts.shards.is_some() || opts.cache_dir.is_some() {
                return run_dist_sweep(&family, &tests, &opts);
            }
            let session = begin_sweep_trace(&opts);
            let mut sweep_opts = SweepOptions::default();
            if let Some(threads) = opts.threads {
                sweep_opts.threads = threads;
            }
            if opts.outcomes {
                sweep_opts.outcome_mode = OutcomeMode::FullOutcomes;
            }
            let sweep = Sweep::with_options(sweep_opts);
            let results = if let Some(loaded) = registry.loaded().first() {
                let results = sweep.run_matrix(&tests, &loaded.stacks);
                print_report(|| report::stack_table(&results, &loaded.title));
                results
            } else if let Some((_, stacks)) = &model_stacks {
                let results = sweep.run_matrix(&tests, stacks);
                print_report(|| report::family_chart(&results, &family));
                results
            } else if opts.power {
                let results = sweep.run_power(&tests);
                print_report(|| report::power_table(&results));
                results
            } else if opts.x86 {
                let results = sweep.run_x86(&tests);
                print_report(|| report::x86_table(&results));
                results
            } else {
                let results = sweep.run_riscv(&tests);
                print_report(|| report::family_chart(&results, &family));
                results
            };
            let report =
                end_sweep_trace(session, &opts, results.stats(), None, None, lint_counters)?;
            if opts.cache_stats {
                print_engine_stats(&report);
            }
            Ok(0)
        }
        // The child half of the --shards protocol: job on stdin, result
        // on stdout. Spawned by the planner, not typed by users (hence
        // absent from the usage text).
        "shard-worker" => tricheck::dist::shard_worker_stdio().map(|()| 0),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// The sharded / persistent sweep path (`--shards` or `--cache-dir`).
fn run_dist_sweep(family: &str, tests: &[LitmusTest], opts: &Options) -> Result<u8, String> {
    let cache_dir = opts
        .cache_dir
        .as_deref()
        .map(validate_cache_dir)
        .transpose()?;
    let dist_opts = DistOptions {
        shards: opts.shards.unwrap_or(1),
        threads: opts.threads,
        outcome_mode: if opts.outcomes {
            OutcomeMode::FullOutcomes
        } else {
            OutcomeMode::Target
        },
        cache_dir,
        // Spawned workers run their shard under a metrics session and
        // ship the drained report back (protocol v4) so the merged
        // metrics carry a per-worker breakdown.
        collect_trace: wants_metrics(opts),
        ..DistOptions::default()
    };
    let session = begin_sweep_trace(opts);
    let spec = if opts.power {
        MatrixSpec::Power
    } else if opts.x86 {
        MatrixSpec::X86
    } else {
        MatrixSpec::Riscv
    };
    let dist = run_sharded(spec, tests, &dist_opts).map_err(|e| e.to_string())?;
    if opts.power {
        print_report(|| report::power_table(&dist.results));
    } else if opts.x86 {
        print_report(|| report::x86_table(&dist.results));
    } else {
        print_report(|| report::family_chart(&dist.results, family));
    }
    let store_stats = dist.store_stats();
    let trace_report = end_sweep_trace(
        session,
        opts,
        dist.results.stats(),
        opts.cache_dir.is_some().then_some(&store_stats),
        Some(&dist),
        // Sharded sweeps only run the built-in matrices, which are
        // lint-clean by construction (tests/lint.rs pins it).
        None,
    )?;
    if opts.cache_stats {
        print_engine_stats(&trace_report);
    }
    Ok(0)
}

/// Prints a `--model`/`--stack` file's lint findings to stderr and
/// refuses to sweep over error-level ones (statically-empty relations,
/// vacuous axioms — the sweep's verdicts would be judged against a model
/// that cannot behave as written) unless `--allow-lint-errors` is given.
fn gate_lints(
    origin: &str,
    lints: &[tricheck::rel::lint::Diagnostic],
    allow_errors: bool,
) -> Result<(), String> {
    for d in lints {
        eprintln!("{origin}:{d}");
    }
    let errors = lints
        .iter()
        .filter(|d| d.severity == tricheck::rel::lint::Severity::Error)
        .count();
    if errors > 0 && !allow_errors {
        return Err(format!(
            "{origin}: {errors} lint error(s) — rerun with --allow-lint-errors to \
             sweep anyway, or `tricheck lint {origin}` for the full report"
        ));
    }
    Ok(())
}

/// Renders the stable `tricheck-lint/v1` JSON report for `lint --json`:
/// schema tag, file, rule/finding counts, then one object per
/// diagnostic in report order. Pinned by `lint_json_schema_is_stable`
/// and schema-validated in CI.
fn lint_json(
    file: &str,
    rules_checked: usize,
    diags: &[tricheck::rel::lint::Diagnostic],
) -> String {
    use std::fmt::Write as _;
    let errors = diags
        .iter()
        .filter(|d| d.severity == tricheck::rel::lint::Severity::Error)
        .count();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"tricheck-lint/v1\",\"file\":{},\"rules_checked\":{rules_checked},\
         \"errors\":{errors},\"warnings\":{},\"diagnostics\":[",
        json_string(file),
        diags.len() - errors
    );
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"code\":{},\"severity\":{},\"line\":{},\"column\":{},\"message\":{}}}",
            json_string(d.code),
            json_string(d.severity.label()),
            d.line,
            d.col,
            json_string(&d.msg)
        );
    }
    out.push_str("]}");
    out
}

/// A JSON string literal: quotes, backslashes (model text contains `\`
/// for set difference) and control characters escaped.
fn json_string(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Whether the run needs metrics aggregation (not just progress).
fn wants_metrics(opts: &Options) -> bool {
    opts.metrics_json.is_some() || opts.trace_out.is_some()
}

/// The tracing session of one `sweep` invocation, driven by
/// `--metrics-json`, `--trace`, and `--progress`.
struct SweepTrace {
    /// Whether a collector session was started (and must be drained).
    traced: bool,
    /// Stop flag + join handle of the live progress renderer thread.
    progress: Option<(
        std::sync::Arc<std::sync::atomic::AtomicBool>,
        std::thread::JoinHandle<()>,
    )>,
}

fn begin_sweep_trace(opts: &Options) -> SweepTrace {
    let config = tricheck::trace::TraceConfig {
        metrics: wants_metrics(opts),
        events: opts.trace_out.is_some(),
        progress: opts.progress,
    };
    let traced = config.metrics || config.events || config.progress;
    if traced {
        tricheck::trace::start(config);
    }
    let progress = opts.progress.then(spawn_progress_renderer);
    SweepTrace { traced, progress }
}

/// Renders a `\r`-overwritten progress line to stderr at ~5 Hz until
/// stopped: cells done/total, current phase, elapsed, ETA. stdout — the
/// chart output scripts diff — is never touched.
fn spawn_progress_renderer() -> (
    std::sync::Arc<std::sync::atomic::AtomicBool>,
    std::thread::JoinHandle<()>,
) {
    use std::sync::atomic::{AtomicBool, Ordering};
    let stop = std::sync::Arc::new(AtomicBool::new(false));
    let flag = std::sync::Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        let mut drawn = false;
        while !flag.load(Ordering::Relaxed) {
            if let Some(p) = tricheck::trace::progress_snapshot() {
                let eta = p
                    .eta()
                    .map_or_else(|| "--".to_string(), |eta| format!("{eta:.0?}"));
                eprint!(
                    "\r[sweep] {}/{} cells  phase {}  elapsed {:.1?}  eta {eta}   ",
                    p.done, p.total, p.phase, p.elapsed
                );
                drawn = true;
            }
            std::thread::sleep(std::time::Duration::from_millis(200));
        }
        if drawn {
            eprintln!();
        }
    });
    (stop, handle)
}

/// Drains the session begun by [`begin_sweep_trace`]: folds in
/// per-worker shard reports, injects the authoritative engine and store
/// counters, and writes the `--metrics-json` / `--trace` files. The
/// returned report is the single source for `--cache-stats`.
fn end_sweep_trace(
    session: SweepTrace,
    opts: &Options,
    stats: &tricheck::core::SweepStats,
    store: Option<&tricheck::core::StoreStats>,
    dist: Option<&tricheck::dist::DistResults>,
    lint_counters: Option<(u64, u64)>,
) -> Result<tricheck::trace::TraceReport, String> {
    if let Some((stop, handle)) = session.progress {
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = handle.join();
    }
    let (mut report, events) = if session.traced {
        let drained = tricheck::trace::finish();
        (drained.report, drained.events)
    } else {
        (tricheck::trace::TraceReport::default(), Vec::new())
    };
    // Workers first: absorbing sums the per-worker counters; the
    // engine's own summed totals then overwrite them with identical
    // values (the invariant `tests/metrics_report.rs` pins).
    if let Some(dist) = dist {
        dist.absorb_traces(&mut report);
    }
    for (name, value) in stats.as_counters() {
        report.set_counter(name, value);
    }
    if let Some(store) = store {
        for (name, value) in store.as_counters() {
            report.set_counter(name, value);
        }
    }
    // Stack/model files are linted while loading, *before* the trace
    // session begins — inject the counts the session could not capture.
    if let Some((rules, diags)) = lint_counters {
        report.set_counter("lint_rules_checked", rules);
        report.set_counter("lint_diagnostics", diags);
    }
    if let Some(path) = &opts.metrics_json {
        std::fs::write(path, report.to_json())
            .map_err(|e| format!("--metrics-json {path}: {e}"))?;
    }
    if let Some(path) = &opts.trace_out {
        std::fs::write(path, tricheck::trace::chrome_trace_json(&events))
            .map_err(|e| format!("--trace {path}: {e}"))?;
    }
    Ok(report)
}

/// Renders every registered sweep stack (`sweep --list-models`): the
/// three built-in matrices' cells plus any runtime-loaded sections,
/// each with its ISA column, mapping, µarch model, and the model's IR
/// axiom names — so data-defined models added to any matrix (or loaded
/// from a stack file) are discoverable without reading source.
fn list_models(extra: &[(String, &[tricheck::core::MatrixStack<'_>])]) -> String {
    let mut out = String::new();
    let matrices: [(&str, Vec<tricheck::core::MatrixStack<'static>>); 3] = [
        ("riscv (Figure 15)", tricheck::core::riscv_stacks()),
        ("power (§7 study, --power)", tricheck::core::power_stacks()),
        ("x86 (TSO study, --x86)", tricheck::core::x86_stacks()),
    ];
    for (title, stacks) in &matrices {
        render_stack_section(&mut out, title, stacks);
    }
    for (title, stacks) in extra {
        render_stack_section(&mut out, title, stacks);
    }
    out
}

/// One `== title ==` section of the `--list-models` catalog.
fn render_stack_section(out: &mut String, title: &str, stacks: &[tricheck::core::MatrixStack<'_>]) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "{:<8} {:<14} {:<24} {:<22} axioms",
        "ISA", "variant", "mapping", "model"
    );
    for stack in stacks {
        let axioms: Vec<&str> = stack.model.ir().axioms().iter().map(|a| a.name).collect();
        let _ = writeln!(
            out,
            "{:<8} {:<14} {:<24} {:<22} {}",
            stack.key.isa_label(),
            stack.key.variant_label(),
            stack.mapping.name(),
            stack.model.name(),
            axioms.join(", ")
        );
    }
}

/// Validates `--cache-dir`: an existing path must be a directory; a
/// missing one is created (with parents).
///
/// `DiskStore::open` performs the same checks, but in a multi-shard run
/// the store is opened inside the *worker* processes — pre-flighting
/// here turns a bad flag value into one clear error instead of N
/// spawned children all failing with a worker-protocol error.
fn validate_cache_dir(path: &str) -> Result<std::path::PathBuf, String> {
    let path = std::path::PathBuf::from(path);
    if path.exists() && !path.is_dir() {
        return Err(format!(
            "--cache-dir '{}' exists but is not a directory",
            path.display()
        ));
    }
    std::fs::create_dir_all(&path).map_err(|e| format!("--cache-dir '{}': {e}", path.display()))?;
    Ok(path)
}

/// Renders and prints a results table under the `report` phase, so
/// chart formatting shows up in the metrics instead of widening the
/// busy-vs-wall gap.
fn print_report(render: impl FnOnce() -> String) {
    let _t = tricheck::trace::span(tricheck::trace::Phase::Report);
    print!("{}", render());
}

/// Prints the `--cache-stats` block: every counter of the final
/// [`tricheck::trace::TraceReport`] as one `key: value` line, sorted by
/// name. Engine counters ([`tricheck::core::SweepStats`]), pruning
/// counters, persistent-store counters (`store_*`, when `--cache-dir`
/// is set), and trace-layer counters all share one flat namespace —
/// the same names the `--metrics-json` document uses.
fn print_engine_stats(report: &tricheck::trace::TraceReport) {
    println!();
    println!("cache stats:");
    for (name, value) in &report.counters {
        println!("  {name}: {value}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn options_parse_with_defaults() {
        let args = strings(&["verify", "mp+rlx+rlx+rlx+rlx"]);
        let (pos, opts) = parse_options(&args).unwrap();
        assert_eq!(pos.len(), 2);
        assert_eq!(opts.isa, RiscvIsa::Base);
        assert_eq!(opts.spec, SpecVersion::Curr);
        assert_eq!(opts.model, "nMM");
    }

    #[test]
    fn options_parse_overrides() {
        let args = strings(&[
            "verify", "x", "--isa", "base+a", "--spec", "ours", "--model", "A9like",
        ]);
        let (_, opts) = parse_options(&args).unwrap();
        assert_eq!(opts.isa, RiscvIsa::BaseA);
        assert_eq!(opts.spec, SpecVersion::Ours);
        assert_eq!(opts.model, "A9like");
    }

    #[test]
    fn thread_and_cache_stat_flags_parse() {
        let args = strings(&["sweep", "mp", "--threads", "4", "--cache-stats"]);
        let (pos, opts) = parse_options(&args).unwrap();
        assert_eq!(pos.len(), 2);
        assert_eq!(opts.threads, Some(4));
        assert!(opts.cache_stats);
        assert!(!opts.outcomes);
        assert!(!opts.power);
        assert!(parse_options(&strings(&["sweep", "--threads", "0"])).is_err());
        assert!(parse_options(&strings(&["sweep", "--threads", "many"])).is_err());
        assert!(parse_options(&strings(&["sweep", "--threads"])).is_err());
    }

    #[test]
    fn outcome_and_power_sweep_flags_parse() {
        let args = strings(&["sweep", "wrc", "--power", "--outcomes"]);
        let (pos, opts) = parse_options(&args).unwrap();
        assert_eq!(pos.len(), 2);
        assert!(opts.outcomes);
        assert!(opts.power);
    }

    #[test]
    fn x86_sweep_runs_end_to_end() {
        // The CI smoke invocation, in-process: the sb family through the
        // data-defined TSO stack.
        let args = strings(&["sweep", "sb", "--x86", "--threads", "2", "--cache-stats"]);
        assert_eq!(run(&args), Ok(0));
        // --power and --x86 cannot be combined.
        assert!(run(&strings(&["sweep", "sb", "--power", "--x86"])).is_err());
    }

    #[test]
    fn list_models_names_every_matrix_and_axiom() {
        let listing = list_models(&[]);
        for needle in [
            "riscv (Figure 15)",
            "power (§7 study, --power)",
            "x86 (TSO study, --x86)",
            "x86-TSO",
            "x86-sc-atomics",
            "x86-relaxed",
            "ARMv7-A9like",
            "riscv-base+a-refined",
            "ScPerLocation",
            "ScAmoOrder",
        ] {
            assert!(listing.contains(needle), "missing {needle}:\n{listing}");
        }
        // 28 RISC-V + 4 Power + 2 x86 stacks, plus 3 titles + 3 headers.
        assert_eq!(listing.lines().count(), 34 + 6);
        // And the flag path prints it without touching a sweep.
        assert_eq!(run(&strings(&["sweep", "--list-models"])), Ok(0));
    }

    #[test]
    fn power_sweep_runs_end_to_end() {
        // The CI smoke invocation, in-process: a small family through the
        // §7 engine sweep with explicit threads.
        let args = strings(&["sweep", "sb", "--power", "--threads", "2", "--cache-stats"]);
        assert_eq!(run(&args), Ok(0));
    }

    #[test]
    fn shard_and_cache_dir_flags_parse() {
        let args = strings(&["sweep", "mp", "--shards", "4", "--cache-dir", "/tmp/tc"]);
        let (pos, opts) = parse_options(&args).unwrap();
        assert_eq!(pos.len(), 2);
        assert_eq!(opts.shards, Some(4));
        assert_eq!(opts.cache_dir.as_deref(), Some("/tmp/tc"));
        assert!(parse_options(&strings(&["sweep", "--shards", "0"])).is_err());
        assert!(parse_options(&strings(&["sweep", "--shards", "lots"])).is_err());
        assert!(parse_options(&strings(&["sweep", "--shards"])).is_err());
        assert!(parse_options(&strings(&["sweep", "--cache-dir"])).is_err());
    }

    #[test]
    fn cache_dir_validation_rejects_non_directories() {
        let file = std::env::temp_dir().join(format!("tricheck-cli-test-{}", std::process::id()));
        std::fs::write(&file, b"not a directory").unwrap();
        let err = validate_cache_dir(file.to_str().unwrap()).unwrap_err();
        assert!(err.contains("not a directory"), "{err}");
        std::fs::remove_file(&file).unwrap();

        // A missing directory is created.
        let dir = std::env::temp_dir().join(format!(
            "tricheck-cli-test-dir-{}/nested",
            std::process::id()
        ));
        let validated = validate_cache_dir(dir.to_str().unwrap()).unwrap();
        assert!(validated.is_dir());
        std::fs::remove_dir_all(dir.parent().unwrap()).unwrap();
    }

    #[test]
    fn single_shard_cached_sweep_runs_in_process_end_to_end() {
        // --shards 1 must bypass process spawning entirely: this test
        // binary has no `shard-worker` subcommand to spawn, so reaching
        // the chart at all proves the bypass. Run twice to exercise the
        // warm-store path through the CLI too.
        let dir = std::env::temp_dir().join(format!("tricheck-cli-sweep-{}", std::process::id()));
        let args = strings(&[
            "sweep",
            "sb",
            "--power",
            "--shards",
            "1",
            "--threads",
            "2",
            "--cache-dir",
            dir.to_str().unwrap(),
            "--cache-stats",
        ]);
        assert_eq!(run(&args), Ok(0));
        assert_eq!(run(&args), Ok(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_isa_is_rejected() {
        let args = strings(&["verify", "x", "--isa", "mips"]);
        assert!(parse_options(&args).is_err());
    }

    #[test]
    fn all_seven_models_resolve() {
        for m in ["WR", "rWR", "rWM", "rMM", "nWR", "nMM", "A9like"] {
            assert!(model_by_name(m, SpecVersion::Curr).is_ok(), "{m}");
        }
        assert!(model_by_name("tso", SpecVersion::Curr).is_err());
    }

    #[test]
    fn named_figure_tests_are_findable() {
        assert!(find_test("wrc+rlx+rlx+rel+acq+rlx").is_ok());
        assert!(find_test("mp_dep+rel+rel+rlx+acq").is_ok());
        assert!(find_test("nonexistent").is_err());
    }

    #[test]
    fn run_rejects_unknown_commands() {
        assert!(run(&strings(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    /// The committed whole-stack definition file, and its bare-model twin.
    const STACK_FILE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../models/x86-tso.stack");
    const MODEL_FILE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../models/x86-tso.cat");

    #[test]
    fn unknown_flags_are_rejected_with_the_flag_name() {
        let err = parse_options(&strings(&["sweep", "--frobnicate"])).unwrap_err();
        assert!(err.contains("unknown option '--frobnicate'"), "{err}");
        // A near-miss typo earns a nearest-match hint.
        let err = parse_options(&strings(&["sweep", "--modle", "nMM"])).unwrap_err();
        assert!(err.contains("did you mean '--model'?"), "{err}");
        let err = parse_options(&strings(&["sweep", "--cache-sats"])).unwrap_err();
        assert!(err.contains("did you mean '--cache-stats'?"), "{err}");
    }

    #[test]
    fn inapplicable_flags_are_rejected_per_subcommand() {
        for (args, flag) in [
            (vec!["list", "--threads", "2"], "--threads"),
            (vec!["show", "x", "--isa", "base"], "--isa"),
            (vec!["compile", "x", "--model", "nMM"], "--model"),
            (vec!["verify", "x", "--shards", "2"], "--shards"),
            (vec!["dot", "x", "--list-models"], "--list-models"),
            (vec!["file", "x", "--cache-dir", "/tmp/x"], "--cache-dir"),
            (vec!["verify", "x", "--stack", STACK_FILE], "--stack"),
        ] {
            let err = run(&strings(&args)).unwrap_err();
            assert!(
                err.contains(&format!("'{flag}' does not apply")),
                "{args:?}: {err}"
            );
        }
        // The flags still work where they do apply.
        assert!(run(&strings(&["compile", "sb+sc+sc+sc+sc", "--isa", "base+a"])).is_ok());
    }

    #[test]
    fn sweep_stack_file_runs_end_to_end() {
        let args = strings(&["sweep", "sb", "--stack", STACK_FILE, "--threads", "2"]);
        assert_eq!(run(&args), Ok(0));
        // And the loaded stack shows up in the catalog path.
        let args = strings(&["sweep", "--list-models", "--stack", STACK_FILE]);
        assert_eq!(run(&args), Ok(0));
    }

    #[test]
    fn sweep_model_file_runs_end_to_end() {
        let args = strings(&["sweep", "sb", "--model", MODEL_FILE, "--threads", "2"]);
        assert_eq!(run(&args), Ok(0));
    }

    #[test]
    fn single_test_commands_accept_a_model_file() {
        let args = strings(&["verify", "mp+rlx+rlx+rlx+rlx", "--model", MODEL_FILE]);
        assert_eq!(run(&args), Ok(0));
        // A value that is neither a built-in name nor a file still errors.
        let err = run(&strings(&[
            "verify",
            "mp+rlx+rlx+rlx+rlx",
            "--model",
            "tso",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown model 'tso'"), "{err}");
    }

    #[test]
    fn sweep_rejects_bad_stack_and_model_combinations() {
        let e = run(&strings(&[
            "sweep", "sb", "--stack", STACK_FILE, "--model", MODEL_FILE,
        ]))
        .unwrap_err();
        assert!(e.contains("cannot be combined"), "{e}");
        let e = run(&strings(&["sweep", "sb", "--stack", STACK_FILE, "--x86"])).unwrap_err();
        assert!(e.contains("--power/--x86"), "{e}");
        let e = run(&strings(&[
            "sweep", "sb", "--stack", STACK_FILE, "--shards", "2",
        ]))
        .unwrap_err();
        assert!(e.contains("--shards/--cache-dir"), "{e}");
        let e = run(&strings(&["sweep", "sb", "--model", MODEL_FILE, "--power"])).unwrap_err();
        assert!(e.contains("--power/--x86"), "{e}");
        // sweep --model only takes the file form.
        let e = run(&strings(&["sweep", "sb", "--model", "nMM"])).unwrap_err();
        assert!(e.contains("is not a file"), "{e}");
    }

    #[test]
    fn stack_file_errors_carry_origin_and_line() {
        let dir = std::env::temp_dir().join(format!("tricheck-cli-stack-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.stack");
        std::fs::write(
            &bad,
            "stack broken\nisa x86\nmapping m\nld rlx = frobnicate\nmodel broken\n  A: acyclic(po)\n",
        )
        .unwrap();
        let err = run(&strings(&["sweep", "sb", "--stack", bad.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("bad.stack:4"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Writes `content` to a uniquely-named temp file and returns its
    /// path (the caller removes it).
    fn temp_file(tag: &str, content: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "tricheck-cli-{tag}-{}-{}",
            std::process::id(),
            std::thread::current()
                .name()
                .unwrap_or("t")
                .replace("::", "-")
        ));
        std::fs::write(&path, content).unwrap();
        path
    }

    /// A stack file whose model contains a statically-empty relation
    /// (`rf ∩ co` can relate nothing: rf ends at reads, co at writes) —
    /// the lint pass reports it as an E001 error.
    const LINT_BAD_STACK: &str = "stack lint-bad
isa x86
mapping m
  ld rlx|acq|sc = ld
  st rlx|rel|sc = st
model lint-bad
  bad := (rf ∩ co)
  Causality: acyclic((po ∪ bad))
";

    #[test]
    fn lint_flags_parse_and_apply_per_subcommand() {
        let args = strings(&["lint", "f", "--json", "--deny-warnings"]);
        let (pos, opts) = parse_options(&args).unwrap();
        assert_eq!(pos.len(), 2);
        assert!(opts.json);
        assert!(opts.deny_warnings);
        assert!(!opts.allow_lint_errors);
        let (_, opts) = parse_options(&strings(&["sweep", "--allow-lint-errors"])).unwrap();
        assert!(opts.allow_lint_errors);
        // Lint-only flags do not leak into sweep, nor sweep flags into lint.
        for (args, flag) in [
            (vec!["sweep", "sb", "--json"], "--json"),
            (vec!["sweep", "sb", "--deny-warnings"], "--deny-warnings"),
            (
                vec!["lint", "f", "--allow-lint-errors"],
                "--allow-lint-errors",
            ),
            (vec!["lint", "f", "--threads", "2"], "--threads"),
            (vec!["verify", "x", "--json"], "--json"),
        ] {
            let err = run(&strings(&args)).unwrap_err();
            assert!(
                err.contains(&format!("'{flag}' does not apply")),
                "{args:?}: {err}"
            );
        }
    }

    #[test]
    fn lint_is_clean_on_the_committed_files() {
        // The committed stack and model files must stay clean even under
        // --deny-warnings (the CI smoke invocation, in-process).
        assert_eq!(
            run(&strings(&["lint", STACK_FILE, "--deny-warnings"])),
            Ok(0)
        );
        assert_eq!(
            run(&strings(&["lint", MODEL_FILE, "--deny-warnings"])),
            Ok(0)
        );
        assert_eq!(run(&strings(&["lint", STACK_FILE, "--json"])), Ok(0));
    }

    #[test]
    fn lint_exit_codes_separate_errors_from_warnings() {
        let bad = temp_file("lint-e001.stack", LINT_BAD_STACK);
        let path = bad.to_str().unwrap();
        // Error-level findings exit 1, with or without --deny-warnings.
        assert_eq!(run(&strings(&["lint", path])), Ok(1));
        assert_eq!(run(&strings(&["lint", path, "--deny-warnings"])), Ok(1));
        assert_eq!(run(&strings(&["lint", path, "--json"])), Ok(1));
        std::fs::remove_file(&bad).unwrap();

        // A warning-only model (dead definition) exits 0, or 2 under
        // --deny-warnings.
        let warn = temp_file(
            "lint-w001.cat",
            "model warny\n  dead := rfe\n  Causality: acyclic((po \u{222a} rf))\n",
        );
        let path = warn.to_str().unwrap();
        assert_eq!(run(&strings(&["lint", path])), Ok(0));
        assert_eq!(run(&strings(&["lint", path, "--deny-warnings"])), Ok(2));
        std::fs::remove_file(&warn).unwrap();

        // A missing file is an operational error, not a lint verdict.
        assert!(run(&strings(&["lint", "/nonexistent.cat"])).is_err());
    }

    #[test]
    fn sweep_refuses_lint_errors_unless_allowed() {
        let bad = temp_file("sweep-gate.stack", LINT_BAD_STACK);
        let path = bad.to_str().unwrap();
        let err = run(&strings(&["sweep", "sb", "--stack", path])).unwrap_err();
        assert!(err.contains("lint error"), "{err}");
        assert!(err.contains("--allow-lint-errors"), "{err}");
        // The override sweeps the (vacuous but well-formed) model anyway.
        let args = strings(&[
            "sweep",
            "sb",
            "--stack",
            path,
            "--threads",
            "2",
            "--allow-lint-errors",
        ]);
        assert_eq!(run(&args), Ok(0));
        std::fs::remove_file(&bad).unwrap();
    }

    #[test]
    fn sweep_metrics_carry_the_lint_counters() {
        let json = std::env::temp_dir().join(format!(
            "tricheck-cli-lint-metrics-{}.json",
            std::process::id()
        ));
        let args = strings(&[
            "sweep",
            "sb",
            "--stack",
            STACK_FILE,
            "--threads",
            "2",
            "--metrics-json",
            json.to_str().unwrap(),
        ]);
        assert_eq!(run(&args), Ok(0));
        let doc = std::fs::read_to_string(&json).unwrap();
        assert!(doc.contains("\"lint_rules_checked\""), "{doc}");
        assert!(doc.contains("\"lint_diagnostics\""), "{doc}");
        std::fs::remove_file(&json).unwrap();
    }

    #[test]
    fn lint_json_schema_is_stable() {
        use tricheck::rel::lint::Diagnostic;
        assert_eq!(
            lint_json("m.cat", 6, &[]),
            "{\"schema\":\"tricheck-lint/v1\",\"file\":\"m.cat\",\"rules_checked\":6,\
             \"errors\":0,\"warnings\":0,\"diagnostics\":[]}"
        );
        let diags = [
            Diagnostic::error(
                "E001",
                (3, 10),
                "relation '(rf \u{2229} co)' is empty".to_string(),
            ),
            Diagnostic::warning(
                "W001",
                (2, 3),
                "definition 'x \\ y' is never used".to_string(),
            ),
        ];
        assert_eq!(
            lint_json("a\"b.cat", 6, &diags),
            "{\"schema\":\"tricheck-lint/v1\",\"file\":\"a\\\"b.cat\",\"rules_checked\":6,\
             \"errors\":1,\"warnings\":1,\"diagnostics\":[\
             {\"code\":\"E001\",\"severity\":\"error\",\"line\":3,\"column\":10,\
             \"message\":\"relation '(rf \u{2229} co)' is empty\"},\
             {\"code\":\"W001\",\"severity\":\"warning\",\"line\":2,\"column\":3,\
             \"message\":\"definition 'x \\\\ y' is never used\"}]}"
        );
    }

    #[test]
    fn json_strings_escape_quotes_backslashes_and_controls() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_string("po \u{222a} rf"), "\"po \u{222a} rf\"");
    }
}
