//! A hand-rolled little-endian binary codec for the persistence layer.
//!
//! [`Fingerprint`](crate::Fingerprint)s are stable across processes of
//! one build, but the byte stream they hash comes from derived `Hash`
//! impls, which Rust does not pin across releases — so anything written
//! to disk needs an explicit encoding whose layout this module owns.
//! Everything is little-endian, length-prefixed, and versioned by the
//! *consumer* (the on-disk cache format of `tricheck-dist` embeds a
//! format version and a checksum around these payloads; a layout change
//! here must bump that version).
//!
//! The codec is deliberately strict in one direction only: encoding is
//! infallible and deterministic (equal values produce equal bytes, which
//! the disk store exploits to compare programs without decoding), while
//! decoding validates every length, tag and event index and returns
//! [`CodecError`] instead of panicking. A corrupted payload therefore
//! degrades to "cache miss", never to a malformed value.
//!
//! # Examples
//!
//! ```
//! use tricheck_litmus::codec::{self, ByteReader};
//! use tricheck_litmus::{suite, MemOrder};
//!
//! let test = suite::mp([MemOrder::Rlx; 4]);
//! let bytes = codec::encode_program(test.program());
//! let mut r = ByteReader::new(&bytes);
//! let decoded = codec::decode_program::<MemOrder>(&mut r).unwrap();
//! assert_eq!(&decoded, test.program());
//! ```

use std::collections::BTreeMap;

use tricheck_rel::{EventSet, Relation};

use crate::arena::ExecArena;
use crate::exec::{Event, EventKind, Execution};
use crate::mir::{Expr, Instr, Loc, Program, Reg, RmwKind, Val};
use crate::order::MemOrder;
use crate::outcome::Outcome;

/// A decoding failure: truncated input, an unknown tag, or a value that
/// violates an invariant (e.g. an event index out of range).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// The input ended before the value was complete.
    UnexpectedEof,
    /// A tag byte or field value was not one the decoder recognizes, or
    /// violated a structural invariant. The message names the field.
    Invalid(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => f.write_str("unexpected end of input"),
            CodecError::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A cursor over an encoded byte slice. All reads bounds-check and
/// return [`CodecError::UnexpectedEof`] past the end.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the beginning of `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    /// [`CodecError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// [`CodecError::UnexpectedEof`] at end of input.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    /// [`CodecError::UnexpectedEof`] if fewer than 2 bytes remain.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// [`CodecError::UnexpectedEof`] if fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// [`CodecError::UnexpectedEof`] if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }

    /// Reads a `u32`-length-prefixed byte string.
    ///
    /// # Errors
    /// [`CodecError::UnexpectedEof`] if the declared length overruns the
    /// input.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// [`CodecError`] on truncation or non-UTF-8 content.
    pub fn string(&mut self) -> Result<String, CodecError> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| CodecError::Invalid("utf-8 string"))
    }
}

/// Appends a little-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32`-length-prefixed byte string.
///
/// # Panics
/// Panics if `bytes` exceeds `u32::MAX` bytes.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(
        out,
        u32::try_from(bytes.len()).expect("byte string fits u32"),
    );
    out.extend_from_slice(bytes);
}

/// Appends a `u32`-length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// An instruction annotation with a pinned binary encoding — the hook
/// that lets the generic [`Program`]/[`Execution`] codecs cover both the
/// C11 level ([`MemOrder`], implemented here) and the hardware level
/// (`HwAnnot`, implemented in `tricheck-isa`).
pub trait AnnCodec: Sized {
    /// A one-byte discriminator distinguishing annotation levels in file
    /// headers, so a C11-level payload can never be decoded as hardware
    /// annotations (each implementation picks a unique value).
    const TAG: u8;

    /// Appends the annotation's encoding.
    fn encode_ann(&self, out: &mut Vec<u8>);

    /// Decodes one annotation.
    ///
    /// # Errors
    /// [`CodecError`] on truncation or an unknown discriminator.
    fn decode_ann(r: &mut ByteReader<'_>) -> Result<Self, CodecError>;
}

impl AnnCodec for MemOrder {
    const TAG: u8 = 1;

    fn encode_ann(&self, out: &mut Vec<u8>) {
        out.push(match self {
            MemOrder::Rlx => 0,
            MemOrder::Acq => 1,
            MemOrder::Rel => 2,
            MemOrder::AcqRel => 3,
            MemOrder::Sc => 4,
        });
    }

    fn decode_ann(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => MemOrder::Rlx,
            1 => MemOrder::Acq,
            2 => MemOrder::Rel,
            3 => MemOrder::AcqRel,
            4 => MemOrder::Sc,
            _ => return Err(CodecError::Invalid("memory order")),
        })
    }
}

fn put_expr(out: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::Const(c) => {
            out.push(0);
            put_u64(out, *c);
        }
        Expr::Reg(r) => {
            out.push(1);
            out.push(r.0);
        }
    }
}

fn read_expr(r: &mut ByteReader<'_>) -> Result<Expr, CodecError> {
    Ok(match r.u8()? {
        0 => Expr::Const(r.u64()?),
        1 => Expr::Reg(Reg(r.u8()?)),
        _ => return Err(CodecError::Invalid("expression tag")),
    })
}

fn put_instr<A: AnnCodec>(out: &mut Vec<u8>, i: &Instr<A>) {
    match i {
        Instr::Read { dst, addr, ann } => {
            out.push(0);
            out.push(dst.0);
            put_expr(out, addr);
            ann.encode_ann(out);
        }
        Instr::Write { addr, val, ann } => {
            out.push(1);
            put_expr(out, addr);
            put_expr(out, val);
            ann.encode_ann(out);
        }
        Instr::Rmw {
            dst,
            addr,
            kind,
            ann,
        } => {
            out.push(2);
            out.push(dst.0);
            put_expr(out, addr);
            match kind {
                RmwKind::FetchAddZero => out.push(0),
                RmwKind::Swap(v) => {
                    out.push(1);
                    put_expr(out, v);
                }
            }
            ann.encode_ann(out);
        }
        Instr::Fence { ann } => {
            out.push(3);
            ann.encode_ann(out);
        }
    }
}

fn read_instr<A: AnnCodec>(r: &mut ByteReader<'_>) -> Result<Instr<A>, CodecError> {
    Ok(match r.u8()? {
        0 => Instr::Read {
            dst: Reg(r.u8()?),
            addr: read_expr(r)?,
            ann: A::decode_ann(r)?,
        },
        1 => Instr::Write {
            addr: read_expr(r)?,
            val: read_expr(r)?,
            ann: A::decode_ann(r)?,
        },
        2 => Instr::Rmw {
            dst: Reg(r.u8()?),
            addr: read_expr(r)?,
            kind: match r.u8()? {
                0 => RmwKind::FetchAddZero,
                1 => RmwKind::Swap(read_expr(r)?),
                _ => return Err(CodecError::Invalid("rmw kind")),
            },
            ann: A::decode_ann(r)?,
        },
        3 => Instr::Fence {
            ann: A::decode_ann(r)?,
        },
        _ => return Err(CodecError::Invalid("instruction tag")),
    })
}

/// Encodes a program (threads, instructions, and its full location set).
#[must_use]
pub fn encode_program<A: AnnCodec>(p: &Program<A>) -> Vec<u8> {
    let mut out = Vec::new();
    put_u16(&mut out, p.threads().len() as u16);
    for thread in p.threads() {
        put_u16(&mut out, thread.len() as u16);
        for instr in thread {
            put_instr(&mut out, instr);
        }
    }
    put_u16(&mut out, p.locations().len() as u16);
    for loc in p.locations() {
        put_u64(&mut out, loc.0);
    }
    out
}

/// Decodes a program and re-validates it through [`Program::new`]
/// (register discipline, event budget), so a tampered payload cannot
/// produce a program the enumeration engine would choke on.
///
/// # Errors
/// [`CodecError`] on truncation, unknown tags, or validation failure.
pub fn decode_program<A: AnnCodec>(r: &mut ByteReader<'_>) -> Result<Program<A>, CodecError> {
    let n_threads = r.u16()? as usize;
    let mut threads = Vec::with_capacity(n_threads);
    for _ in 0..n_threads {
        let n_instrs = r.u16()? as usize;
        let mut thread = Vec::with_capacity(n_instrs);
        for _ in 0..n_instrs {
            thread.push(read_instr(r)?);
        }
        threads.push(thread);
    }
    let n_locs = r.u16()? as usize;
    let mut locations = Vec::with_capacity(n_locs);
    for _ in 0..n_locs {
        locations.push(Loc(r.u64()?));
    }
    // The encoded location set is the validated original's, which is a
    // superset of the constant addresses `Program::new` re-derives, so
    // round-tripping reproduces the set exactly.
    Program::new(threads, locations).map_err(|_| CodecError::Invalid("program validation"))
}

/// Encodes an outcome (its `(thread, register) = value` entries).
#[must_use]
pub fn encode_outcome(o: &Outcome) -> Vec<u8> {
    let mut out = Vec::new();
    put_u16(&mut out, o.len() as u16);
    for ((tid, reg), val) in o.iter() {
        put_u32(&mut out, tid as u32);
        out.push(reg.0);
        put_u64(&mut out, val.0);
    }
    out
}

/// Decodes an outcome.
///
/// # Errors
/// [`CodecError::UnexpectedEof`] on truncation.
pub fn decode_outcome(r: &mut ByteReader<'_>) -> Result<Outcome, CodecError> {
    let n = r.u16()? as usize;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let tid = r.u32()? as usize;
        let reg = Reg(r.u8()?);
        let val = Val(r.u64()?);
        entries.push(((tid, reg), val));
    }
    Ok(Outcome::from_values(entries))
}

/// Encodes an observed-register list (an outcome-partition cache key).
pub fn put_observed(out: &mut Vec<u8>, observed: &[(usize, Reg)]) {
    put_u16(out, observed.len() as u16);
    for &(tid, reg) in observed {
        put_u32(out, tid as u32);
        out.push(reg.0);
    }
}

/// Decodes an observed-register list.
///
/// # Errors
/// [`CodecError::UnexpectedEof`] on truncation.
pub fn read_observed(r: &mut ByteReader<'_>) -> Result<Vec<(usize, Reg)>, CodecError> {
    let n = r.u16()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let tid = r.u32()? as usize;
        out.push((tid, Reg(r.u8()?)));
    }
    Ok(out)
}

const NO_TID: u8 = 0xFF;

fn put_relation(out: &mut Vec<u8>, rel: &Relation, n: usize) {
    for a in 0..n {
        put_u64(out, rel.successors(a).bits());
    }
}

fn read_relation(r: &mut ByteReader<'_>, n: usize) -> Result<Relation, CodecError> {
    let mut pairs = Vec::new();
    for a in 0..n {
        let bits = r.u64()?;
        for b in 0..64 {
            if bits & (1u64 << b) != 0 {
                if b >= n {
                    return Err(CodecError::Invalid("relation event index"));
                }
                pairs.push((a, b));
            }
        }
    }
    Ok(Relation::from_pairs(n, pairs))
}

/// Encodes one candidate execution.
#[must_use]
pub fn encode_execution<A: AnnCodec>(e: &Execution<A>) -> Vec<u8> {
    let n = e.len();
    let mut out = Vec::new();
    out.push(n as u8);
    for ev in e.events() {
        out.push(ev.tid.map_or(NO_TID, |t| t as u8));
        out.push(ev.po_index as u8);
        out.push(match ev.kind {
            EventKind::Read => 0,
            EventKind::Write => 1,
            EventKind::Fence => 2,
        });
        match &ev.ann {
            Some(a) => {
                out.push(1);
                a.encode_ann(&mut out);
            }
            None => out.push(0),
        }
        out.push(u8::from(ev.is_rmw));
    }
    for rel in [&e.po, &e.addr, &e.data, &e.rmw, &e.rf, &e.co] {
        put_relation(&mut out, rel, n);
    }
    for slot in &e.loc {
        match slot {
            Some(l) => {
                out.push(1);
                put_u64(&mut out, l.0);
            }
            None => out.push(0),
        }
    }
    for slot in &e.val {
        match slot {
            Some(v) => {
                out.push(1);
                put_u64(&mut out, v.0);
            }
            None => out.push(0),
        }
    }
    put_u64(&mut out, e.inits.bits());
    put_u16(&mut out, e.reg_def.len() as u16);
    for (&(tid, reg), &ev) in &e.reg_def {
        put_u32(&mut out, tid as u32);
        out.push(reg.0);
        out.push(ev as u8);
    }
    out
}

/// Decodes one candidate execution.
///
/// # Errors
/// [`CodecError`] on truncation or out-of-range event indices.
pub fn decode_execution<A: AnnCodec>(r: &mut ByteReader<'_>) -> Result<Execution<A>, CodecError> {
    let n = r.u8()? as usize;
    if n > tricheck_rel::MAX_EVENTS {
        return Err(CodecError::Invalid("event count"));
    }
    let mut events = Vec::with_capacity(n);
    for id in 0..n {
        let tid = match r.u8()? {
            NO_TID => None,
            t => Some(t as usize),
        };
        let po_index = r.u8()? as usize;
        let kind = match r.u8()? {
            0 => EventKind::Read,
            1 => EventKind::Write,
            2 => EventKind::Fence,
            _ => return Err(CodecError::Invalid("event kind")),
        };
        let ann = match r.u8()? {
            0 => None,
            1 => Some(A::decode_ann(r)?),
            _ => return Err(CodecError::Invalid("annotation flag")),
        };
        let is_rmw = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(CodecError::Invalid("rmw flag")),
        };
        events.push(Event {
            id,
            tid,
            po_index,
            kind,
            ann,
            is_rmw,
        });
    }
    let po = read_relation(r, n)?;
    let addr = read_relation(r, n)?;
    let data = read_relation(r, n)?;
    let rmw = read_relation(r, n)?;
    let rf = read_relation(r, n)?;
    let co = read_relation(r, n)?;
    let mut loc = Vec::with_capacity(n);
    for _ in 0..n {
        loc.push(match r.u8()? {
            0 => None,
            1 => Some(Loc(r.u64()?)),
            _ => return Err(CodecError::Invalid("location flag")),
        });
    }
    let mut val = Vec::with_capacity(n);
    for _ in 0..n {
        val.push(match r.u8()? {
            0 => None,
            1 => Some(Val(r.u64()?)),
            _ => return Err(CodecError::Invalid("value flag")),
        });
    }
    let init_bits = r.u64()?;
    if n < 64 && init_bits >> n != 0 {
        return Err(CodecError::Invalid("init set event index"));
    }
    let inits = EventSet::from_ids(n, (0..n).filter(|&i| init_bits & (1u64 << i) != 0));
    let n_defs = r.u16()? as usize;
    let mut reg_def = BTreeMap::new();
    for _ in 0..n_defs {
        let tid = r.u32()? as usize;
        let reg = Reg(r.u8()?);
        let ev = r.u8()? as usize;
        if ev >= n {
            return Err(CodecError::Invalid("register definition event index"));
        }
        reg_def.insert((tid, reg), ev);
    }
    Ok(Execution {
        events,
        po,
        addr,
        data,
        rmw,
        rf,
        co,
        loc,
        val,
        inits,
        reg_def,
    })
}

/// Appends a columnar [`ExecArena`] to `out`: a `u32` candidate count,
/// then (for a non-empty arena) the skeleton execution as one framed
/// [`encode_execution`] payload followed by the flat `rf`/`co` word
/// columns and the `loc`/`val` option columns. The derived `fr` column
/// is never written — [`read_arena`] re-derives it in one pass.
///
/// Deterministic like every encoder here: equal arenas produce equal
/// bytes, which the disk store's skip-unchanged-writes check relies on.
pub fn put_arena<A: AnnCodec + Clone>(out: &mut Vec<u8>, arena: &ExecArena<A>) {
    put_u32(out, arena.len() as u32);
    let Some(skeleton) = arena.skeleton() else {
        return;
    };
    put_bytes(out, &encode_execution(skeleton));
    let (rf, co, loc, val) = arena.raw_columns();
    for &w in rf {
        put_u64(out, w);
    }
    for &w in co {
        put_u64(out, w);
    }
    for slot in loc {
        match slot {
            Some(l) => {
                out.push(1);
                put_u64(out, l.0);
            }
            None => out.push(0),
        }
    }
    for slot in val {
        match slot {
            Some(v) => {
                out.push(1);
                put_u64(out, v.0);
            }
            None => out.push(0),
        }
    }
}

/// Decodes a [`put_arena`] payload, validating the skeleton frame, the
/// column sizes against the remaining input, and every relation word
/// against the skeleton's event universe.
pub fn read_arena<A: AnnCodec + Clone>(r: &mut ByteReader<'_>) -> Result<ExecArena<A>, CodecError> {
    let len = r.u32()? as usize;
    if len == 0 {
        return Ok(ExecArena::new());
    }
    let frame = r.bytes()?;
    let mut fr = ByteReader::new(frame);
    let skeleton = decode_execution::<A>(&mut fr)?;
    if fr.remaining() != 0 {
        return Err(CodecError::Invalid("trailing bytes in skeleton frame"));
    }
    let n = skeleton.len();
    // Bound the column allocations by the bytes actually present before
    // reserving anything: 8 per relation word (two word columns) plus at
    // least 1 per option slot (two option columns).
    let words = len
        .checked_mul(n)
        .ok_or(CodecError::Invalid("arena column size overflow"))?;
    let need = words
        .checked_mul(2 * 8 + 2)
        .ok_or(CodecError::Invalid("arena column size overflow"))?;
    if r.remaining() < need {
        return Err(CodecError::UnexpectedEof);
    }
    let read_words = |r: &mut ByteReader<'_>| -> Result<Vec<u64>, CodecError> {
        let mut col = Vec::with_capacity(words);
        for _ in 0..words {
            let w = r.u64()?;
            if n < 64 && w >> n != 0 {
                return Err(CodecError::Invalid("arena relation event index"));
            }
            col.push(w);
        }
        Ok(col)
    };
    let rf = read_words(r)?;
    let co = read_words(r)?;
    let mut loc = Vec::with_capacity(words);
    for _ in 0..words {
        loc.push(match r.u8()? {
            0 => None,
            1 => Some(Loc(r.u64()?)),
            _ => return Err(CodecError::Invalid("location tag")),
        });
    }
    let mut val = Vec::with_capacity(words);
    for _ in 0..words {
        val.push(match r.u8()? {
            0 => None,
            1 => Some(Val(r.u64()?)),
            _ => return Err(CodecError::Invalid("value tag")),
        });
    }
    Ok(ExecArena::from_columns(
        Some(skeleton),
        len,
        rf,
        co,
        loc,
        val,
    ))
}

/// The pinned 64-bit FNV-1a used for content hashes in the persistence
/// layer (the same mixing as [`crate::Fingerprint`], exposed over raw
/// bytes so stores can checksum payloads and key entries without
/// depending on derived `Hash` byte streams).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_executions;
    use crate::suite;

    #[test]
    fn program_roundtrips_at_c11_level() {
        for t in [
            suite::mp([MemOrder::Rlx; 4]),
            suite::fig3_wrc(),
            suite::fig13_mp_lazy(),
            suite::fig4_iriw_sc(),
        ] {
            let bytes = encode_program(t.program());
            let mut r = ByteReader::new(&bytes);
            let decoded = decode_program::<MemOrder>(&mut r).expect("roundtrip");
            assert_eq!(&decoded, t.program(), "{}", t.name());
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn program_encoding_is_deterministic() {
        let a = suite::mp([MemOrder::Sc; 4]);
        let b = suite::mp([MemOrder::Sc; 4]);
        assert_eq!(encode_program(a.program()), encode_program(b.program()));
    }

    #[test]
    fn outcome_roundtrips() {
        let t = suite::fig3_wrc();
        let bytes = encode_outcome(t.target());
        let decoded = decode_outcome(&mut ByteReader::new(&bytes)).expect("roundtrip");
        assert_eq!(&decoded, t.target());
    }

    #[test]
    fn execution_roundtrips() {
        let t = suite::mp([MemOrder::Rlx, MemOrder::Rel, MemOrder::Acq, MemOrder::Rlx]);
        let mut execs = Vec::new();
        enumerate_executions(t.program(), &mut |e| {
            execs.push(e.clone());
            true
        });
        assert!(!execs.is_empty());
        for e in &execs {
            let bytes = encode_execution(e);
            let decoded =
                decode_execution::<MemOrder>(&mut ByteReader::new(&bytes)).expect("roundtrip");
            assert_eq!(&decoded, e);
        }
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let t = suite::sb([MemOrder::Rlx; 4]);
        let bytes = encode_program(t.program());
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(
                decode_program::<MemOrder>(&mut r).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn garbage_tags_are_rejected() {
        // An instruction tag of 9 does not exist.
        let mut bytes = Vec::new();
        put_u16(&mut bytes, 1); // one thread
        put_u16(&mut bytes, 1); // one instruction
        bytes.push(9);
        assert_eq!(
            decode_program::<MemOrder>(&mut ByteReader::new(&bytes)),
            Err(CodecError::Invalid("instruction tag"))
        );
    }

    #[test]
    fn fnv1a_matches_fingerprint_mixing() {
        // Empty input is the offset basis; the mixing constants are the
        // pinned FNV-1a parameters.
        assert_eq!(fnv1a(&[]), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
