//! The shipped `.litmus` corpus parses, matches the built-in tests where
//! applicable, and produces the expected verdicts through the full stack.

use std::path::Path;

use tricheck::litmus::format::parse_litmus;
use tricheck::prelude::*;

fn load(name: &str) -> LitmusTest {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("litmus")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    parse_litmus(&text).unwrap_or_else(|e| panic!("parsing {name}: {e}"))
}

#[test]
fn corpus_parses_and_matches_builtin_semantics() {
    let mp = load("mp_rel_acq.litmus");
    let builtin = suite::mp([MemOrder::Rlx, MemOrder::Rel, MemOrder::Acq, MemOrder::Rlx]);
    assert_eq!(mp.program(), builtin.program());
    assert_eq!(mp.target(), builtin.target());

    let wrc = load("wrc_fig3.litmus");
    assert_eq!(wrc.program(), suite::fig3_wrc().program());

    let iriw = load("iriw_sc.litmus");
    assert_eq!(iriw.program(), suite::fig4_iriw_sc().program());
}

#[test]
fn corpus_verdicts_through_the_full_stack() {
    let c11 = C11Model::new();
    for (file, c11_permits, buggy_on_nmm_curr) in [
        ("mp_rel_acq.litmus", false, false),
        ("wrc_fig3.litmus", false, true),
        ("iriw_sc.litmus", false, true),
        ("isa2_rel_acq.litmus", false, true),
    ] {
        let test = load(file);
        assert_eq!(c11.permits_target(&test), c11_permits, "{file} C11 verdict");
        let stack = TriCheck::new(
            riscv_mapping(RiscvIsa::Base, SpecVersion::Curr),
            UarchModel::nmm(SpecVersion::Curr),
        );
        let got = stack.verify(&test).unwrap().classification() == Classification::Bug;
        assert_eq!(got, buggy_on_nmm_curr, "{file} on nMM/riscv-curr");
        // Every corpus bug disappears under the refined stack.
        let fixed = TriCheck::new(
            riscv_mapping(RiscvIsa::Base, SpecVersion::Ours),
            UarchModel::nmm(SpecVersion::Ours),
        );
        assert_ne!(
            fixed.verify(&test).unwrap().classification(),
            Classification::Bug,
            "{file} must be fixed by riscv-ours"
        );
    }
}

#[test]
fn dependency_corpus_test_exercises_lazy_cumulativity() {
    let test = load("dep_fig13.litmus");
    // The parsed test mirrors the built-in Figure 13 shape: C11 allows it.
    assert!(C11Model::new().permits_target(&test));
    let strict = TriCheck::new(
        riscv_mapping(RiscvIsa::BaseA, SpecVersion::Curr),
        UarchModel::nmm(SpecVersion::Curr),
    );
    assert_eq!(
        strict.verify(&test).unwrap().classification(),
        Classification::OverlyStrict
    );
    let lazy = TriCheck::new(
        riscv_mapping(RiscvIsa::BaseA, SpecVersion::Ours),
        UarchModel::nmm(SpecVersion::Ours),
    );
    assert_eq!(
        lazy.verify(&test).unwrap().classification(),
        Classification::Equivalent
    );
}
