//! The hardware ISA layer: instruction annotations for compiled litmus
//! tests, covering the RISC-V Base and Base+A ISAs of the paper's case
//! study (§4) plus the Power/ARMv7 fence dialect used by the compiler
//! study (§7).
//!
//! Compiled programs are `tricheck_litmus::Program<HwAnnot>` values: the
//! same micro-IR as C11 litmus tests, but annotated with hardware ordering
//! semantics instead of C11 memory orders:
//!
//! - plain accesses (`lw`/`sw`, `ld`/`st`),
//! - AMO accesses with acquire/release/store-atomicity bits
//!   ([`AmoBits`]; the `.sc` bit is the paper's §5.2.2 proposal that
//!   decouples store atomicity from acquire/release semantics),
//! - fences ([`FenceKind`]): RISC-V `fence pred, succ` (non-cumulative,
//!   §4.1.2), the cumulative lightweight/heavyweight fences the paper
//!   proposes for the refined ISA (§5.1.1–§5.1.2), and Power's
//!   `sync`/`lwsync`/`ctrlisync` which map onto the same three classes.
//!
//! # Examples
//!
//! ```
//! use tricheck_isa::{AccessTypes, Asm, FenceKind, HwAnnot};
//!
//! let fence = HwAnnot::Fence(FenceKind::Normal {
//!     pred: AccessTypes::RW,
//!     succ: AccessTypes::W,
//! });
//! assert_eq!(fence.to_string(), "fence rw, w");
//! assert_eq!(FenceKind::CumulativeHeavy.asm(Asm::Power), "sync");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use tricheck_litmus::{CodecError, Expr, Instr, Loc, Program, RmwKind};

/// Which access kinds a fence's predecessor or successor set contains.
///
/// RISC-V `FENCE` instructions name these explicitly (`fence rw, w`);
/// `r` matches reads, `w` matches writes, `rw` matches both (the paper
/// writes the both-case as `m`, for "memory operations").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AccessTypes {
    /// Reads are included.
    pub reads: bool,
    /// Writes are included.
    pub writes: bool,
}

impl AccessTypes {
    /// Reads only.
    pub const R: AccessTypes = AccessTypes {
        reads: true,
        writes: false,
    };
    /// Writes only.
    pub const W: AccessTypes = AccessTypes {
        reads: false,
        writes: true,
    };
    /// Reads and writes (the paper's `m`).
    pub const RW: AccessTypes = AccessTypes {
        reads: true,
        writes: true,
    };

    /// Whether an event kind belongs to this set.
    #[must_use]
    pub fn matches(self, kind: tricheck_litmus::EventKind) -> bool {
        match kind {
            tricheck_litmus::EventKind::Read => self.reads,
            tricheck_litmus::EventKind::Write => self.writes,
            tricheck_litmus::EventKind::Fence => false,
        }
    }
}

impl fmt::Display for AccessTypes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.reads, self.writes) {
            (true, true) => f.write_str("rw"),
            (true, false) => f.write_str("r"),
            (false, true) => f.write_str("w"),
            (false, false) => f.write_str("none"),
        }
    }
}

/// The fence classes of the hardware layer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FenceKind {
    /// A non-cumulative fence ordering `pred`-typed accesses before
    /// `succ`-typed accesses of the same thread (RISC-V `fence pred,succ`,
    /// Power/ARM `ctrlisync`/`ctrlisb` when `pred = R`).
    Normal {
        /// Access types ordered before the fence.
        pred: AccessTypes,
        /// Access types ordered after the fence.
        succ: AccessTypes,
    },
    /// A cumulative lightweight fence (the paper's proposed `lwf`; Power
    /// `lwsync`): orders R→R, R→W and W→W, with A-cumulativity.
    CumulativeLight,
    /// A cumulative heavyweight fence (the paper's proposed `hwf`; Power
    /// `sync`, ARM `dmb`): orders everything, fully cumulative.
    CumulativeHeavy,
    /// x86 `MFENCE`: orders everything locally (its only job on TSO is
    /// draining the store buffer, restoring W→R order). Non-cumulative —
    /// x86-TSO stores are multi-copy atomic, so there is nothing remote
    /// to accumulate.
    Mfence,
}

impl FenceKind {
    /// The access types in the fence's predecessor set.
    #[must_use]
    pub fn pred(self) -> AccessTypes {
        match self {
            FenceKind::Normal { pred, .. } => pred,
            FenceKind::CumulativeLight | FenceKind::CumulativeHeavy | FenceKind::Mfence => {
                AccessTypes::RW
            }
        }
    }

    /// The access types in the fence's successor set.
    #[must_use]
    pub fn succ(self) -> AccessTypes {
        match self {
            FenceKind::Normal { succ, .. } => succ,
            FenceKind::CumulativeLight | FenceKind::CumulativeHeavy | FenceKind::Mfence => {
                AccessTypes::RW
            }
        }
    }

    /// `true` if the fence carries cumulativity (orders other threads'
    /// observed writes, §2.3.2).
    #[must_use]
    pub fn is_cumulative(self) -> bool {
        matches!(
            self,
            FenceKind::CumulativeLight | FenceKind::CumulativeHeavy
        )
    }

    /// Whether a (pred-kind, succ-kind) pair of events is ordered by this
    /// fence. Cumulative lightweight fences do not order W→R (like Power's
    /// `lwsync`).
    #[must_use]
    pub fn orders(
        self,
        before: tricheck_litmus::EventKind,
        after: tricheck_litmus::EventKind,
    ) -> bool {
        use tricheck_litmus::EventKind::{Read, Write};
        match self {
            FenceKind::Normal { pred, succ } => pred.matches(before) && succ.matches(after),
            FenceKind::CumulativeLight => {
                matches!(
                    (before, after),
                    (Read, Read) | (Read, Write) | (Write, Write)
                )
            }
            FenceKind::CumulativeHeavy | FenceKind::Mfence => {
                matches!((before, after), (Read | Write, Read | Write))
            }
        }
    }

    /// Renders the fence in the given assembly dialect.
    #[must_use]
    pub fn asm(self, dialect: Asm) -> String {
        match (self, dialect) {
            (FenceKind::Mfence, _) => "mfence".to_string(),
            (FenceKind::Normal { pred, succ }, Asm::RiscV | Asm::X86) => {
                format!("fence {pred}, {succ}")
            }
            (FenceKind::CumulativeLight, Asm::RiscV | Asm::X86) => "lwf".to_string(),
            (FenceKind::CumulativeHeavy, Asm::RiscV | Asm::X86) => "hwf".to_string(),
            (FenceKind::Normal { pred, .. }, Asm::Power) => {
                if pred == AccessTypes::R {
                    "ctrlisync".to_string()
                } else {
                    format!("fence-like({pred})")
                }
            }
            (FenceKind::CumulativeLight, Asm::Power) => "lwsync".to_string(),
            (FenceKind::CumulativeHeavy, Asm::Power) => "sync".to_string(),
        }
    }
}

impl fmt::Display for FenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.asm(Asm::RiscV))
    }
}

/// The ordering bits carried by a RISC-V AMO instruction (§4.2.1–§4.2.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct AmoBits {
    /// Acquire: no later access of this thread may be observed before the
    /// AMO.
    pub aq: bool,
    /// Release: the AMO may not be observed before earlier accesses of
    /// this thread.
    pub rl: bool,
    /// Store atomicity / membership in the global SC-AMO order. In the
    /// current (2016) ISA this is implied by `aq && rl`; the paper's
    /// refined ISA exposes it as a separate bit (§5.2.2).
    pub sc: bool,
}

impl AmoBits {
    /// No ordering bits (unordered AMO).
    pub const NONE: AmoBits = AmoBits {
        aq: false,
        rl: false,
        sc: false,
    };
    /// `aq` only.
    pub const AQ: AmoBits = AmoBits {
        aq: true,
        rl: false,
        sc: false,
    };
    /// `rl` only.
    pub const RL: AmoBits = AmoBits {
        aq: false,
        rl: true,
        sc: false,
    };
    /// `aq.rl` — the current ISA's strongest annotation, which also
    /// implies store atomicity and SC-order membership (§4.2.2).
    pub const AQ_RL: AmoBits = AmoBits {
        aq: true,
        rl: true,
        sc: true,
    };
    /// `aq.sc` — refined-ISA SC load: acquire + store atomic, no release.
    pub const AQ_SC: AmoBits = AmoBits {
        aq: true,
        rl: false,
        sc: true,
    };
    /// `rl.sc` — refined-ISA SC store: release + store atomic, no acquire.
    pub const RL_SC: AmoBits = AmoBits {
        aq: false,
        rl: true,
        sc: true,
    };

    /// The suffix in assembly, e.g. `".aq.rl"`.
    #[must_use]
    pub fn suffix(self) -> String {
        let mut s = String::new();
        if self.aq {
            s.push_str(".aq");
        }
        if self.rl {
            s.push_str(".rl");
        }
        // `.sc` is printed only where it is an architectural bit of its
        // own (the refined ISA); aq.rl implies it in the current ISA.
        if self.sc && !(self.aq && self.rl) {
            s.push_str(".sc");
        }
        s
    }
}

/// A hardware instruction annotation: what the access *is* at the ISA
/// level.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HwAnnot {
    /// A plain load or store (`lw`/`sw`).
    Plain,
    /// An AMO access with ordering bits.
    Amo(AmoBits),
    /// A fence.
    Fence(FenceKind),
}

impl HwAnnot {
    /// The AMO bits, if this is an AMO access.
    #[must_use]
    pub fn amo_bits(&self) -> Option<AmoBits> {
        match self {
            HwAnnot::Amo(bits) => Some(*bits),
            _ => None,
        }
    }

    /// The fence kind, if this is a fence.
    #[must_use]
    pub fn fence_kind(&self) -> Option<FenceKind> {
        match self {
            HwAnnot::Fence(k) => Some(*k),
            _ => None,
        }
    }
}

impl fmt::Display for HwAnnot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwAnnot::Plain => f.write_str("plain"),
            HwAnnot::Amo(bits) => write!(f, "amo{}", bits.suffix()),
            HwAnnot::Fence(k) => write!(f, "{k}"),
        }
    }
}

impl tricheck_litmus::AnnCodec for HwAnnot {
    /// Distinguishes hardware-level payloads from C11-level ones
    /// (`MemOrder::TAG == 1`) in persistent-store file headers.
    const TAG: u8 = 2;

    fn encode_ann(&self, out: &mut Vec<u8>) {
        match self {
            HwAnnot::Plain => out.push(0),
            HwAnnot::Amo(bits) => {
                out.push(1);
                out.push(u8::from(bits.aq) | u8::from(bits.rl) << 1 | u8::from(bits.sc) << 2);
            }
            HwAnnot::Fence(FenceKind::Normal { pred, succ }) => {
                out.push(2);
                let access = |a: &AccessTypes| u8::from(a.reads) | u8::from(a.writes) << 1;
                out.push(access(pred));
                out.push(access(succ));
            }
            HwAnnot::Fence(FenceKind::CumulativeLight) => out.push(3),
            HwAnnot::Fence(FenceKind::CumulativeHeavy) => out.push(4),
            HwAnnot::Fence(FenceKind::Mfence) => out.push(5),
        }
    }

    fn decode_ann(r: &mut tricheck_litmus::ByteReader<'_>) -> Result<Self, CodecError> {
        let access = |b: u8| -> Result<AccessTypes, CodecError> {
            if b > 0b11 {
                return Err(CodecError::Invalid("fence access types"));
            }
            Ok(AccessTypes {
                reads: b & 1 != 0,
                writes: b & 2 != 0,
            })
        };
        Ok(match r.u8()? {
            0 => HwAnnot::Plain,
            1 => {
                let bits = r.u8()?;
                if bits > 0b111 {
                    return Err(CodecError::Invalid("amo bits"));
                }
                HwAnnot::Amo(AmoBits {
                    aq: bits & 1 != 0,
                    rl: bits & 2 != 0,
                    sc: bits & 4 != 0,
                })
            }
            2 => HwAnnot::Fence(FenceKind::Normal {
                pred: access(r.u8()?)?,
                succ: access(r.u8()?)?,
            }),
            3 => HwAnnot::Fence(FenceKind::CumulativeLight),
            4 => HwAnnot::Fence(FenceKind::CumulativeHeavy),
            5 => HwAnnot::Fence(FenceKind::Mfence),
            _ => return Err(CodecError::Invalid("hardware annotation tag")),
        })
    }
}

/// Assembly dialects for rendering compiled programs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Asm {
    /// RISC-V: `lw`/`sw`/`amoadd.w`/`amoswap.w`/`fence`.
    RiscV,
    /// Power/ARMv7-flavoured: `ld`/`st`/`sync`/`lwsync`/`ctrlisync`.
    Power,
    /// x86: `mov`/`mfence` (TSO needs nothing else).
    X86,
}

/// The two RISC-V ISAs of the case study (§4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RiscvIsa {
    /// Baseline ISA: fences only.
    Base,
    /// Baseline + Standard Extension for Atomic Instructions.
    BaseA,
}

impl fmt::Display for RiscvIsa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RiscvIsa::Base => f.write_str("Base"),
            RiscvIsa::BaseA => f.write_str("Base+A"),
        }
    }
}

/// Which version of the RISC-V memory model a component targets:
/// the 2016 specification (`Curr`) or the paper's refined proposal
/// (`Ours`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SpecVersion {
    /// `riscv-curr`: the ISA as specified in 2016.
    Curr,
    /// `riscv-ours`: the paper's refined memory model.
    Ours,
}

impl fmt::Display for SpecVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecVersion::Curr => f.write_str("riscv-curr"),
            SpecVersion::Ours => f.write_str("riscv-ours"),
        }
    }
}

fn fmt_expr(e: &Expr) -> String {
    match e {
        // Values and addresses share one domain, so constants are printed
        // numerically (an address-of-x operand prints as x's address).
        Expr::Const(c) => format!("{c}"),
        Expr::Reg(r) => format!("{r}"),
    }
}

fn fmt_addr(e: &Expr) -> String {
    match e {
        Expr::Const(c) => format!("({})", Loc(*c)),
        Expr::Reg(r) => format!("({r})"),
    }
}

/// Renders one compiled instruction in the given dialect.
///
/// Register allocation for address operands is abstracted: addresses are
/// printed symbolically (`(x)`, `(y)`), matching the paper's convention of
/// noting "register x5 holds the address of x".
#[must_use]
pub fn format_instr(instr: &Instr<HwAnnot>, dialect: Asm) -> String {
    let (ld_op, st_op) = match dialect {
        Asm::RiscV => ("lw", "sw"),
        Asm::Power => ("ld", "st"),
        Asm::X86 => ("mov", "mov"),
    };
    match instr {
        Instr::Read { dst, addr, ann } => match ann {
            HwAnnot::Amo(bits) => {
                format!("amoadd.w{} {dst}, 0, {}", bits.suffix(), fmt_addr(addr))
            }
            _ => format!("{ld_op} {dst}, {}", fmt_addr(addr)),
        },
        Instr::Write { addr, val, ann } => match ann {
            HwAnnot::Amo(bits) => {
                format!(
                    "amoswap.w{} -, {}, {}",
                    bits.suffix(),
                    fmt_expr(val),
                    fmt_addr(addr)
                )
            }
            _ => format!("{st_op} {}, {}", fmt_expr(val), fmt_addr(addr)),
        },
        Instr::Rmw {
            dst,
            addr,
            kind,
            ann,
        } => {
            let bits = ann.amo_bits().unwrap_or_default();
            match kind {
                RmwKind::FetchAddZero => {
                    format!("amoadd.w{} {dst}, 0, {}", bits.suffix(), fmt_addr(addr))
                }
                RmwKind::Swap(v) => {
                    format!(
                        "amoswap.w{} {dst}, {}, {}",
                        bits.suffix(),
                        fmt_expr(v),
                        fmt_addr(addr)
                    )
                }
            }
        }
        Instr::Fence { ann } => match ann {
            HwAnnot::Fence(k) => k.asm(dialect),
            other => format!("fence? ({other})"),
        },
    }
}

/// Renders a compiled program as a per-thread listing in the style of the
/// paper's Figures 8–10, 12 and 14.
#[must_use]
pub fn format_program(prog: &Program<HwAnnot>, dialect: Asm) -> String {
    let mut out = String::new();
    for (tid, thread) in prog.threads().iter().enumerate() {
        out.push_str(&format!("T{tid}:\n"));
        for instr in thread {
            out.push_str("  ");
            out.push_str(&format_instr(instr, dialect));
            out.push('\n');
        }
    }
    out
}

/// Convenience constructors for hardware-level programs, used by tests and
/// examples that build ISA programs directly.
pub mod build {
    use super::{AmoBits, FenceKind, HwAnnot};
    use tricheck_litmus::{Expr, Instr, Loc, Reg, RmwKind};

    /// Plain load `dst = [loc]`.
    #[must_use]
    pub fn lw(dst: Reg, loc: Loc) -> Instr<HwAnnot> {
        Instr::Read {
            dst,
            addr: Expr::Const(loc.0),
            ann: HwAnnot::Plain,
        }
    }

    /// Plain store `[loc] = val`.
    #[must_use]
    pub fn sw(loc: Loc, val: u64) -> Instr<HwAnnot> {
        Instr::Write {
            addr: Expr::Const(loc.0),
            val: Expr::Const(val),
            ann: HwAnnot::Plain,
        }
    }

    /// AMO load idiom: `amoadd.w dst, 0, (loc)` with the given bits.
    ///
    /// The zero-add write-back is architecturally invisible (it restores
    /// the value just read), so the event is modeled as a read carrying
    /// the AMO ordering bits — matching the paper's µspec treatment.
    #[must_use]
    pub fn amo_load(dst: Reg, loc: Loc, bits: AmoBits) -> Instr<HwAnnot> {
        Instr::Read {
            dst,
            addr: Expr::Const(loc.0),
            ann: HwAnnot::Amo(bits),
        }
    }

    /// AMO store idiom: `amoswap.w -, val, (loc)` with the given bits.
    /// The old value is discarded into a scratch register.
    #[must_use]
    pub fn amo_store(scratch: Reg, loc: Loc, val: u64, bits: AmoBits) -> Instr<HwAnnot> {
        Instr::Rmw {
            dst: scratch,
            addr: Expr::Const(loc.0),
            kind: RmwKind::Swap(Expr::Const(val)),
            ann: HwAnnot::Amo(bits),
        }
    }

    /// RISC-V `fence pred, succ`.
    #[must_use]
    pub fn fence(pred: super::AccessTypes, succ: super::AccessTypes) -> Instr<HwAnnot> {
        Instr::Fence {
            ann: HwAnnot::Fence(FenceKind::Normal { pred, succ }),
        }
    }

    /// The refined ISA's cumulative lightweight fence (`lwf`).
    #[must_use]
    pub fn lwf() -> Instr<HwAnnot> {
        Instr::Fence {
            ann: HwAnnot::Fence(FenceKind::CumulativeLight),
        }
    }

    /// The refined ISA's cumulative heavyweight fence (`hwf`).
    #[must_use]
    pub fn hwf() -> Instr<HwAnnot> {
        Instr::Fence {
            ann: HwAnnot::Fence(FenceKind::CumulativeHeavy),
        }
    }

    /// x86 `MFENCE`.
    #[must_use]
    pub fn mfence() -> Instr<HwAnnot> {
        Instr::Fence {
            ann: HwAnnot::Fence(FenceKind::Mfence),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tricheck_litmus::EventKind::{Fence, Read, Write};

    #[test]
    fn access_types_display() {
        assert_eq!(AccessTypes::R.to_string(), "r");
        assert_eq!(AccessTypes::W.to_string(), "w");
        assert_eq!(AccessTypes::RW.to_string(), "rw");
    }

    #[test]
    fn access_types_match_kinds() {
        assert!(AccessTypes::R.matches(Read));
        assert!(!AccessTypes::R.matches(Write));
        assert!(AccessTypes::RW.matches(Write));
        assert!(!AccessTypes::RW.matches(Fence));
    }

    #[test]
    fn normal_fence_orders_by_type_filter() {
        let f = FenceKind::Normal {
            pred: AccessTypes::RW,
            succ: AccessTypes::W,
        };
        assert!(f.orders(Read, Write));
        assert!(f.orders(Write, Write));
        assert!(!f.orders(Read, Read));
    }

    #[test]
    fn lightweight_fence_does_not_order_write_to_read() {
        let f = FenceKind::CumulativeLight;
        assert!(f.orders(Read, Read));
        assert!(f.orders(Read, Write));
        assert!(f.orders(Write, Write));
        assert!(!f.orders(Write, Read));
    }

    #[test]
    fn heavyweight_fence_orders_everything() {
        let f = FenceKind::CumulativeHeavy;
        assert!(f.orders(Write, Read));
        assert!(f.orders(Read, Write));
    }

    #[test]
    fn fence_assembly_by_dialect() {
        let f = FenceKind::Normal {
            pred: AccessTypes::R,
            succ: AccessTypes::RW,
        };
        assert_eq!(f.asm(Asm::RiscV), "fence r, rw");
        assert_eq!(f.asm(Asm::Power), "ctrlisync");
        assert_eq!(FenceKind::CumulativeLight.asm(Asm::Power), "lwsync");
        assert_eq!(FenceKind::CumulativeHeavy.asm(Asm::RiscV), "hwf");
    }

    #[test]
    fn amo_suffixes() {
        assert_eq!(AmoBits::AQ.suffix(), ".aq");
        assert_eq!(AmoBits::RL.suffix(), ".rl");
        assert_eq!(AmoBits::AQ_RL.suffix(), ".aq.rl");
        assert_eq!(AmoBits::AQ_SC.suffix(), ".aq.sc");
        assert_eq!(AmoBits::RL_SC.suffix(), ".rl.sc");
        assert_eq!(AmoBits::NONE.suffix(), "");
    }

    #[test]
    fn instruction_rendering_matches_paper_style() {
        use build::*;
        use tricheck_litmus::{Loc, Reg};
        let x = Loc(1);
        assert_eq!(format_instr(&lw(Reg(0), x), Asm::RiscV), "lw r0, (x)");
        assert_eq!(format_instr(&sw(x, 1), Asm::RiscV), "sw 1, (x)");
        assert_eq!(
            format_instr(&amo_load(Reg(3), x, AmoBits::AQ), Asm::RiscV),
            "amoadd.w.aq r3, 0, (x)"
        );
        assert_eq!(
            format_instr(&amo_store(Reg(9), x, 1, AmoBits::RL), Asm::RiscV),
            "amoswap.w.rl r9, 1, (x)"
        );
        assert_eq!(
            format_instr(&fence(AccessTypes::RW, AccessTypes::W), Asm::RiscV),
            "fence rw, w"
        );
        assert_eq!(format_instr(&lw(Reg(0), x), Asm::Power), "ld r0, (x)");
    }

    #[test]
    fn hw_annotations_roundtrip_through_the_codec() {
        use tricheck_litmus::{AnnCodec, ByteReader};
        let annots = [
            HwAnnot::Plain,
            HwAnnot::Amo(AmoBits::NONE),
            HwAnnot::Amo(AmoBits::AQ),
            HwAnnot::Amo(AmoBits::RL),
            HwAnnot::Amo(AmoBits::AQ_RL),
            HwAnnot::Amo(AmoBits::AQ_SC),
            HwAnnot::Amo(AmoBits::RL_SC),
            HwAnnot::Fence(FenceKind::Normal {
                pred: AccessTypes::R,
                succ: AccessTypes::RW,
            }),
            HwAnnot::Fence(FenceKind::Normal {
                pred: AccessTypes::W,
                succ: AccessTypes::W,
            }),
            HwAnnot::Fence(FenceKind::CumulativeLight),
            HwAnnot::Fence(FenceKind::CumulativeHeavy),
            HwAnnot::Fence(FenceKind::Mfence),
        ];
        for ann in annots {
            let mut bytes = Vec::new();
            ann.encode_ann(&mut bytes);
            let mut r = ByteReader::new(&bytes);
            assert_eq!(HwAnnot::decode_ann(&mut r), Ok(ann));
            assert_eq!(r.remaining(), 0);
        }
        // Unknown tags are rejected, not misread.
        assert!(HwAnnot::decode_ann(&mut ByteReader::new(&[9])).is_err());
    }

    #[test]
    fn mfence_orders_everything_locally_without_cumulativity() {
        assert!(FenceKind::Mfence.orders(Write, Read));
        assert!(FenceKind::Mfence.orders(Read, Write));
        assert!(!FenceKind::Mfence.is_cumulative());
        assert_eq!(FenceKind::Mfence.asm(Asm::X86), "mfence");
        assert_eq!(FenceKind::Mfence.asm(Asm::RiscV), "mfence");
    }

    #[test]
    fn x86_dialect_renders_movs() {
        use build::*;
        use tricheck_litmus::{Loc, Reg};
        assert_eq!(format_instr(&lw(Reg(0), Loc(1)), Asm::X86), "mov r0, (x)");
        assert_eq!(format_instr(&sw(Loc(1), 1), Asm::X86), "mov 1, (x)");
        assert_eq!(format_instr(&mfence(), Asm::X86), "mfence");
    }

    #[test]
    fn compiled_programs_roundtrip_through_the_codec() {
        use tricheck_litmus::codec::{decode_program, encode_program};
        use tricheck_litmus::{ByteReader, Reg};
        let prog = Program::new(
            vec![
                vec![
                    build::sw(Loc(1), 1),
                    build::fence(AccessTypes::RW, AccessTypes::W),
                    build::amo_store(Reg(9), Loc(2), 1, AmoBits::RL_SC),
                ],
                vec![
                    build::amo_load(Reg(0), Loc(2), AmoBits::AQ),
                    build::lwf(),
                    build::lw(Reg(1), Loc(1)),
                ],
            ],
            [],
        )
        .expect("valid program");
        let bytes = encode_program(&prog);
        let decoded = decode_program::<HwAnnot>(&mut ByteReader::new(&bytes)).expect("roundtrip");
        assert_eq!(decoded, prog);
    }

    #[test]
    fn program_listing_has_one_section_per_thread() {
        use build::*;
        use tricheck_litmus::{Loc, Program, Reg};
        let prog = Program::new(vec![vec![sw(Loc(1), 1)], vec![lw(Reg(0), Loc(1))]], []).unwrap();
        let listing = format_program(&prog, Asm::RiscV);
        assert!(listing.contains("T0:\n  sw 1, (x)"));
        assert!(listing.contains("T1:\n  lw r0, (x)"));
    }
}
