//! Differential tests for the shared execution-space engine: the
//! enumerate-once/judge-everywhere pipeline must be observationally
//! identical to the naive per-cell recompute it replaced, and the
//! short-circuiting witness-search mode must agree with full enumeration.

use std::sync::OnceLock;

use proptest::prelude::*;
use tricheck::litmus::ExecutionSpace;
use tricheck::prelude::*;

/// The 1,701-test suite, instantiated once for every property case.
fn cached_suite() -> &'static [LitmusTest] {
    static SUITE: OnceLock<Vec<LitmusTest>> = OnceLock::new();
    SUITE.get_or_init(suite::full_suite)
}

/// Strategy: a random non-empty subset of the suite (by test index),
/// spanning several families so the sweep aggregates multiple rows.
fn arb_subset() -> impl Strategy<Value = Vec<LitmusTest>> {
    proptest::collection::vec(0usize..cached_suite().len(), 12).prop_map(|picks| {
        picks
            .into_iter()
            .map(|i| cached_suite()[i].clone())
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The engine sweep and the naive per-cell sweep classify every cell
    /// identically, for any subset of the suite and any thread count.
    #[test]
    fn shared_engine_sweep_matches_naive_recompute(tests in arb_subset()) {
        let naive = Sweep::with_options(SweepOptions::with_threads(1)).run_riscv_naive(&tests);
        for threads in [1, 4] {
            let engine = Sweep::with_options(SweepOptions::with_threads(threads)).run_riscv(&tests);
            prop_assert!(
                engine.rows() == naive.rows(),
                "engine (threads={threads}) diverged from naive recompute"
            );
        }
    }

    /// Judging through a shared space gives the same verdict as the
    /// one-shot short-circuiting search, for C11 and for every µarch
    /// model.
    #[test]
    fn shared_space_verdicts_match_one_shot_search(tests in arb_subset()) {
        let c11 = C11Model::new();
        let mapping = riscv_mapping(RiscvIsa::Base, SpecVersion::Curr);
        let models = UarchModel::all_riscv(SpecVersion::Curr);
        for test in &tests {
            let space = ExecutionSpace::new(test.program().clone());
            prop_assert_eq!(
                c11.permits_target_in(&space, test.target()),
                c11.permits_target(test)
            );
            let compiled = compile(test, mapping).unwrap();
            let hw_space = ExecutionSpace::new(compiled.program().clone());
            for model in &models {
                prop_assert_eq!(
                    model.observes_in(&hw_space, compiled.target()),
                    model.observes(compiled.program(), compiled.target())
                );
            }
        }
    }
}

/// Witness-search short-circuiting agrees with full enumeration on the
/// entire 1,701-test suite: the C11 target verdict computed by stopping
/// at the first consistent witness equals membership of the target in the
/// fully-enumerated permitted-outcome set.
#[test]
fn witness_search_agrees_with_full_enumeration_on_full_suite() {
    let c11 = C11Model::new();
    for test in suite::full_suite() {
        let short_circuit = c11.permits_target(&test);
        let full = c11.permitted_outcomes(&test).contains(test.target());
        assert_eq!(short_circuit, full, "{} diverges", test.name());
    }
}

/// The same agreement at the microarchitecture level, on one family
/// (the full suite × 7 models in full-outcome mode would dominate CI).
#[test]
fn uarch_witness_search_agrees_with_full_enumeration() {
    let mapping = riscv_mapping(RiscvIsa::BaseA, SpecVersion::Curr);
    let models = UarchModel::all_riscv(SpecVersion::Curr);
    for test in suite::full_suite()
        .iter()
        .filter(|t| t.family() == "corsdwi")
    {
        let compiled = compile(test, mapping).unwrap();
        for model in &models {
            let short_circuit = model.observes(compiled.program(), compiled.target());
            let full = model
                .observable_outcomes(compiled.program(), compiled.observed())
                .contains(compiled.target());
            assert_eq!(short_circuit, full, "{} on {}", test.name(), model.name());
        }
    }
}

/// The full Figure 15 sweep upholds the exactly-once cache contract at
/// suite scale, not just on single families.
#[test]
fn full_suite_sweep_upholds_cache_contract() {
    let tests = suite::full_suite();
    let results = Sweep::new().run_riscv(&tests);
    let stats = results.stats();
    assert_eq!(stats.tests, 1701);
    assert_eq!(stats.cells, 28);
    assert_eq!(stats.c11_evaluations, 1701);
    assert_eq!(stats.compile_calls, 1701 * 4);
    assert_eq!(stats.space_enumerations, stats.distinct_programs);
    assert!(stats.distinct_programs < stats.compile_calls);
    // And the headline number still falls out of the cached pipeline:
    // 144 forbidden-yet-observable outcomes on A9like / Base+A / curr.
    let key = StackKey::Riscv {
        isa: RiscvIsa::BaseA,
        version: SpecVersion::Curr,
    };
    let a9_bugs = results.bugs_for(key, "A9like");
    assert_eq!(a9_bugs, 144);
}
