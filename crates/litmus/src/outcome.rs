//! Program outcomes: final register valuations.

use std::collections::BTreeMap;
use std::fmt;

use crate::mir::{Reg, Val};

/// A program outcome: the values observed by a set of registers, keyed by
/// `(thread id, register)`.
///
/// Litmus tests designate one *target* outcome (the interesting, usually
/// controversial one); memory models are compared on whether they
/// permit/exhibit it. Full outcome *sets* are used for the stronger
/// equivalence check.
///
/// # Examples
///
/// ```
/// use tricheck_litmus::{Outcome, Reg, Val};
///
/// let o = Outcome::from_values([((1, Reg(0)), Val(1)), ((1, Reg(1)), Val(0))]);
/// assert_eq!(o.get(1, Reg(0)), Some(Val(1)));
/// assert_eq!(o.to_string(), "T1:r0=1, T1:r1=0");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Outcome {
    values: BTreeMap<(usize, Reg), Val>,
}

impl Outcome {
    /// Creates an empty outcome.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an outcome from `((tid, reg), value)` entries.
    #[must_use]
    pub fn from_values<I: IntoIterator<Item = ((usize, Reg), Val)>>(entries: I) -> Self {
        Outcome {
            values: entries.into_iter().collect(),
        }
    }

    /// Records that `reg` of thread `tid` observed `val`.
    pub fn set(&mut self, tid: usize, reg: Reg, val: Val) {
        self.values.insert((tid, reg), val);
    }

    /// The value observed by `reg` of thread `tid`, if recorded.
    #[must_use]
    pub fn get(&self, tid: usize, reg: Reg) -> Option<Val> {
        self.values.get(&(tid, reg)).copied()
    }

    /// The `(tid, reg)` keys this outcome constrains, in order.
    pub fn observed(&self) -> impl Iterator<Item = (usize, Reg)> + '_ {
        self.values.keys().copied()
    }

    /// Iterates over all `((tid, reg), value)` entries.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, Reg), Val)> + '_ {
        self.values.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of registers constrained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the outcome constrains no registers at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for ((tid, reg), val) in &self.values {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "T{tid}:{reg}={val}")?;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_sorted_and_readable() {
        let mut o = Outcome::new();
        o.set(2, Reg(1), Val(0));
        o.set(0, Reg(0), Val(1));
        assert_eq!(o.to_string(), "T0:r0=1, T2:r1=0");
    }

    #[test]
    fn empty_outcome_display_is_nonempty() {
        assert_eq!(Outcome::new().to_string(), "(empty)");
    }

    #[test]
    fn ordering_allows_outcome_sets() {
        use std::collections::BTreeSet;
        let a = Outcome::from_values([((0, Reg(0)), Val(0))]);
        let b = Outcome::from_values([((0, Reg(0)), Val(1))]);
        let set: BTreeSet<_> = [a.clone(), b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
