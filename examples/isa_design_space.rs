//! The paper's §5 methodology as a program: iteratively weaken the
//! microarchitecture, find each class of RISC-V MCM bug with TriCheck,
//! and confirm the proposed ISA refinement removes it.
//!
//! Run with: `cargo run --release --example isa_design_space`

use tricheck::prelude::*;

struct Step {
    section: &'static str,
    problem: &'static str,
    test: LitmusTest,
    isa: RiscvIsa,
    buggy_model: fn(SpecVersion) -> UarchModel,
}

fn check(step: &Step) -> Result<(), Box<dyn std::error::Error>> {
    println!("--- {}: {} ---", step.section, step.problem);
    println!("probe test: {}", step.test.name());

    // Current specification: mapping + model both follow the 2016 ISA.
    let mapping = riscv_mapping(step.isa, SpecVersion::Curr);
    let stack = TriCheck::new(mapping, (step.buggy_model)(SpecVersion::Curr));
    let before = stack.verify(&step.test)?;
    println!(
        "  {} / {} under riscv-curr: {}",
        step.isa,
        stack.uarch().name(),
        before.classification()
    );

    // Refined specification: the paper's proposal.
    let mapping = riscv_mapping(step.isa, SpecVersion::Ours);
    let stack = TriCheck::new(mapping, (step.buggy_model)(SpecVersion::Ours));
    let after = stack.verify(&step.test)?;
    println!(
        "  {} / {} under riscv-ours: {}",
        step.isa,
        stack.uarch().name(),
        after.classification()
    );
    assert_ne!(
        after.classification(),
        Classification::Bug,
        "refinement must remove the bug"
    );
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let steps = [
        Step {
            section: "§5.1.1",
            problem: "no cumulative lightweight fences (WRC)",
            test: suite::fig3_wrc(),
            isa: RiscvIsa::Base,
            buggy_model: UarchModel::nwr,
        },
        Step {
            section: "§5.1.2",
            problem: "no cumulative heavyweight fences (IRIW)",
            test: suite::fig4_iriw_sc(),
            isa: RiscvIsa::Base,
            buggy_model: UarchModel::nmm,
        },
        Step {
            section: "§5.1.3",
            problem: "same-address loads may reorder (CoRR)",
            test: suite::corr([MemOrder::Rlx; 4]),
            isa: RiscvIsa::Base,
            buggy_model: UarchModel::rmm,
        },
        Step {
            section: "§5.2.1",
            problem: "AMO releases are not cumulative (Base+A WRC)",
            test: suite::fig3_wrc(),
            isa: RiscvIsa::BaseA,
            buggy_model: UarchModel::nmm,
        },
    ];
    for step in &steps {
        check(step)?;
    }

    // §5.2.2 and §5.2.3 are strictness (performance) refinements, not
    // bug fixes: the current ISA over-orders, the refined one does not.
    println!("--- §5.2.2: roach-motel movement for SC atomics ---");
    let t = suite::fig11_mp_roach_motel();
    let curr = TriCheck::new(
        riscv_mapping(RiscvIsa::BaseA, SpecVersion::Curr),
        UarchModel::rmm(SpecVersion::Curr),
    );
    let ours = TriCheck::new(
        riscv_mapping(RiscvIsa::BaseA, SpecVersion::Ours),
        UarchModel::rmm(SpecVersion::Ours),
    );
    println!("  riscv-curr: {}", curr.verify(&t)?.classification());
    println!("  riscv-ours: {}", ours.verify(&t)?.classification());
    assert_eq!(
        curr.verify(&t)?.classification(),
        Classification::OverlyStrict
    );
    assert_eq!(
        ours.verify(&t)?.classification(),
        Classification::Equivalent
    );

    println!("\n--- §5.2.3: lazy cumulativity ---");
    let t = suite::fig13_mp_lazy();
    let curr = TriCheck::new(
        riscv_mapping(RiscvIsa::BaseA, SpecVersion::Curr),
        UarchModel::nmm(SpecVersion::Curr),
    );
    let ours = TriCheck::new(
        riscv_mapping(RiscvIsa::BaseA, SpecVersion::Ours),
        UarchModel::nmm(SpecVersion::Ours),
    );
    println!("  riscv-curr: {}", curr.verify(&t)?.classification());
    println!("  riscv-ours: {}", ours.verify(&t)?.classification());
    assert_eq!(
        ours.verify(&t)?.classification(),
        Classification::Equivalent
    );

    println!("\nall §5 refinement steps reproduced.");
    Ok(())
}
