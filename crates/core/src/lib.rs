//! TriCheck: full-stack memory consistency model verification.
//!
//! This crate is the paper's primary contribution — the toolflow of its
//! Figure 6, connecting the four MCM-dependent system components:
//!
//! 1. **HLL axiomatic evaluation**: the C11 model decides whether each
//!    litmus test's target outcome is permitted ([`tricheck_c11`]).
//! 2. **HLL → ISA compilation**: a compiler mapping lowers the test to
//!    hardware instructions ([`tricheck_compiler`]).
//! 3. **ISA µspec evaluation**: a microarchitecture model decides whether
//!    the outcome is observable ([`tricheck_uarch`]).
//! 4. **Equivalence check**: the verdicts are compared and classified as
//!    [`Classification::Bug`] (forbidden yet observable),
//!    [`Classification::OverlyStrict`] (permitted yet unobservable) or
//!    [`Classification::Equivalent`].
//!
//! [`TriCheck`] runs the flow for one stack configuration;
//! [`runner::Sweep`] fans a litmus suite across a matrix of full-stack
//! cells and aggregates Figure-15-style counts; [`report`] renders them.
//!
//! Sweeps run on the shared execution-space engine (see [`runner`] for
//! the architecture): C11 verdicts are computed once per test,
//! compilation once per (test, mapping), and candidate-execution
//! enumeration once per distinct compiled program, with a work-stealing
//! scheduler fanning (test × stack) items over the shared caches.
//! [`SweepResults::stats`] exposes the counters that prove it.
//! [`Sweep::run_matrix`](runner::Sweep::run_matrix) is the generic
//! engine — it takes any list of [`MatrixStack`]s keyed by [`StackKey`];
//! [`Sweep::run_riscv`](runner::Sweep::run_riscv) (Figure 15) and
//! [`Sweep::run_power`](runner::Sweep::run_power) (the §7 compiler
//! study) are thin instantiations. [`OutcomeMode::FullOutcomes`]
//! upgrades any sweep to the stronger full-outcome-set equivalence at
//! witness-mode cost.
//!
//! # Examples
//!
//! Verify the paper's Figure 3 WRC test against the shared-store-buffer
//! microarchitecture under the 2016 RISC-V Base ISA — and find the bug
//! that motivates cumulative lightweight fences (§5.1.1):
//!
//! ```
//! use tricheck_core::{Classification, TriCheck};
//! use tricheck_isa::SpecVersion;
//! use tricheck_litmus::suite;
//! use tricheck_uarch::UarchModel;
//! use tricheck_compiler::BaseIntuitive;
//!
//! let stack = TriCheck::new(&BaseIntuitive, UarchModel::nwr(SpecVersion::Curr));
//! let result = stack.verify(&suite::fig3_wrc())?;
//! assert_eq!(result.classification(), Classification::Bug);
//!
//! // The refined ISA (cumulative fences + fixed mapping) eliminates it.
//! use tricheck_compiler::BaseRefined;
//! let fixed = TriCheck::new(&BaseRefined, UarchModel::nwr(SpecVersion::Ours));
//! assert_eq!(fixed.verify(&suite::fig3_wrc())?.classification(),
//!            Classification::Equivalent);
//! # Ok::<(), tricheck_compiler::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explain;
pub mod registry;
pub mod report;
pub mod runner;
pub mod store;
pub mod verdict;

pub use explain::{diagnose, Diagnosis};
pub use registry::{
    lint_path, load_model_file, load_model_file_linted, load_stack_file, parse_stack_file,
    stacks_for_model, LoadedStack, StackFileError, StackRegistry,
};
pub use runner::{
    power_stacks, results_from_items, riscv_stacks, x86_stacks, MatrixItems, MatrixStack,
    OutcomeMode, SpaceSharing, StackKey, Sweep, SweepOptions, SweepResults, SweepRow, SweepStats,
    SHARING_BREAK_EVEN,
};
pub use store::{C11Cached, SpaceStore, StoreStats};
pub use verdict::{Classification, FullComparison, TestResult};

use std::collections::BTreeSet;

use tricheck_c11::C11Model;
use tricheck_compiler::{compile, CompileError, Mapping};
use tricheck_litmus::{ExecutionSpace, LitmusTest, Outcome};
use tricheck_uarch::UarchModel;

/// One full-stack configuration: a C11 front end, a compiler mapping, and
/// a microarchitectural implementation of the target ISA.
///
/// The ISA itself is present implicitly, through the constraints it places
/// on the mapping and the microarchitecture (paper §3.2).
pub struct TriCheck<'m> {
    hll: C11Model,
    mapping: &'m dyn Mapping,
    uarch: UarchModel,
}

impl<'m> TriCheck<'m> {
    /// Assembles a stack from a compiler mapping and a µarch model.
    #[must_use]
    pub fn new(mapping: &'m dyn Mapping, uarch: UarchModel) -> Self {
        TriCheck {
            hll: C11Model::new(),
            mapping,
            uarch,
        }
    }

    /// The compiler mapping under evaluation.
    #[must_use]
    pub fn mapping(&self) -> &dyn Mapping {
        self.mapping
    }

    /// The microarchitecture model under evaluation.
    #[must_use]
    pub fn uarch(&self) -> &UarchModel {
        &self.uarch
    }

    /// Runs Steps 1–4 of the toolflow for one litmus test, judging its
    /// designated target outcome.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] if the mapping cannot express the test.
    pub fn verify(&self, test: &LitmusTest) -> Result<TestResult, CompileError> {
        let permitted = self.hll.permits_target(test);
        let compiled = compile(test, self.mapping)?;
        let observable = self.uarch.observes(compiled.program(), compiled.target());
        Ok(TestResult::new(test, permitted, observable))
    }

    /// Runs the toolflow in full-outcome-set mode: compares *every*
    /// outcome the C11 model permits with every outcome the
    /// microarchitecture exhibits, not just the designated target.
    ///
    /// This is the stronger (and slower) equivalence check used when
    /// validating refinements ("no forbidden outcomes are allowed as a
    /// result of this relaxation", §5.2.2).
    ///
    /// Both outcome sets are computed through the shared
    /// [`ExecutionSpace::outcome_set`] engine — the same path a
    /// full-outcome sweep ([`OutcomeMode::FullOutcomes`]) amortizes
    /// across model cells, pinned to the one-shot streaming enumeration
    /// by the differential tests in `tests/power_equivalence.rs`.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] if the mapping cannot express the test.
    pub fn verify_full(&self, test: &LitmusTest) -> Result<FullComparison, CompileError> {
        let hll_space = ExecutionSpace::new(test.program().clone());
        let permitted = self.hll.permitted_outcomes_in(&hll_space, test.observed());
        let compiled = compile(test, self.mapping)?;
        let hw_space = ExecutionSpace::new(compiled.program().clone());
        let observable: BTreeSet<Outcome> = self
            .uarch
            .observable_outcomes_in(&hw_space, compiled.observed());
        Ok(FullComparison::new(test.name(), permitted, observable))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tricheck_compiler::{BaseAIntuitive, BaseARefined, BaseIntuitive, BaseRefined};
    use tricheck_isa::SpecVersion::{Curr, Ours};
    use tricheck_litmus::{suite, MemOrder};

    #[test]
    fn wrc_bug_found_and_fixed() {
        let t = suite::fig3_wrc();
        let buggy = TriCheck::new(&BaseIntuitive, UarchModel::nmm(Curr));
        assert_eq!(
            buggy.verify(&t).unwrap().classification(),
            Classification::Bug
        );
        let fixed = TriCheck::new(&BaseRefined, UarchModel::nmm(Ours));
        assert_eq!(
            fixed.verify(&t).unwrap().classification(),
            Classification::Equivalent
        );
    }

    #[test]
    fn overly_strict_detected_for_roach_motel() {
        let t = suite::fig11_mp_roach_motel();
        let strict = TriCheck::new(&BaseAIntuitive, UarchModel::rmm(Curr));
        assert_eq!(
            strict.verify(&t).unwrap().classification(),
            Classification::OverlyStrict
        );
        let relaxed = TriCheck::new(&BaseARefined, UarchModel::rmm(Ours));
        assert_eq!(
            relaxed.verify(&t).unwrap().classification(),
            Classification::Equivalent
        );
    }

    #[test]
    fn full_comparison_classifies_like_target_mode_on_mp() {
        // For MP variants the target outcome is the only disputed one, so
        // both modes agree on the classification.
        for orders in [
            [MemOrder::Rlx; 4],
            [MemOrder::Rlx, MemOrder::Rel, MemOrder::Acq, MemOrder::Rlx],
        ] {
            let t = suite::mp(orders);
            let stack = TriCheck::new(&BaseIntuitive, UarchModel::nmm(Curr));
            let target_mode = stack.verify(&t).unwrap().classification();
            let full_mode = stack.verify_full(&t).unwrap().classification();
            assert_eq!(target_mode, full_mode, "{}", t.name());
        }
    }

    #[test]
    fn full_comparison_exposes_outcome_sets() {
        let t = suite::mp([MemOrder::Rlx; 4]);
        let stack = TriCheck::new(&BaseIntuitive, UarchModel::wr(Curr));
        let cmp = stack.verify_full(&t).unwrap();
        // WR is stronger than C11 for relaxed MP: fewer observable
        // outcomes than permitted ones.
        assert!(cmp.observable().is_subset(cmp.permitted()));
        assert!(cmp.observable().len() < cmp.permitted().len());
        assert_eq!(cmp.classification(), Classification::OverlyStrict);
    }

    #[test]
    fn refined_stack_is_equivalent_or_strict_on_named_tests() {
        // After refinement no named paper test may classify as Bug on any
        // model.
        for model in UarchModel::all_riscv(Ours) {
            for t in [
                suite::fig3_wrc(),
                suite::fig4_iriw_sc(),
                suite::fig11_mp_roach_motel(),
                suite::fig13_mp_lazy(),
                suite::corr([MemOrder::Rlx; 4]),
            ] {
                let stack = TriCheck::new(&BaseARefined, model.clone());
                let c = stack.verify(&t).unwrap().classification();
                assert_ne!(c, Classification::Bug, "{} on {}", t.name(), model.name());
            }
        }
    }
}
