//! An offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate stands in
//! for the real `rand` under the same name. It implements only what the
//! workspace's tests use: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer
//! `Range`/`RangeInclusive` bounds.
//!
//! The generator is splitmix64 — deterministic for a given seed, which is
//! all the conformance tests require (they fix their seeds). It is NOT
//! the real `StdRng` stream; tests must not depend on specific drawn
//! values, only on determinism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Types that can seed and construct an RNG.
pub trait SeedableRng: Sized {
    /// Constructs the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value in the range from `draw(bound)` — a closure
    /// returning a uniform value below its argument.
    fn sample(self, rng: &mut dyn FnMut(u64) -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn FnMut(u64) -> u64) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn FnMut(u64) -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u64 + 1;
                (start as i128 + rng(span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// The random-value interface.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut draw = |bound: u64| self.next_u64() % bound;
        range.sample(&mut draw)
    }
}

/// RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic splitmix64 generator standing in for `StdRng`.
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x1234_5678_9abc_def0,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(2..=3);
            assert!((2..=3).contains(&x));
            let y: u64 = rng.gen_range(1..10);
            assert!((1..10).contains(&y));
        }
    }
}
