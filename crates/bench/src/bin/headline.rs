//! Quick validation: total bugs per (ISA, version, model) over the suite.
use tricheck_core::{report, Sweep};
use tricheck_litmus::suite;

fn main() {
    let tests = suite::full_suite();
    let (results, trace) = tricheck_bench::timed_report(|| Sweep::new().run_riscv(&tests));
    println!("{}", report::headline_table(&results));
    println!("{}", trace.render_text());
}
