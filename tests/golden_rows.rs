//! Golden-row regression tests: the full Figure 15 sweep table and the
//! §7 compiler-study counts are committed as fixtures, so any engine
//! refactor that changes a single classification fails tier-1 loudly
//! (rather than silently shifting paper numbers).
//!
//! To regenerate after an *intentional* model change, run
//! `TRICHECK_UPDATE_FIXTURES=1 cargo test --test golden_rows` and commit
//! the diff.

use std::path::PathBuf;

use tricheck::prelude::*;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn assert_matches_fixture(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var_os("TRICHECK_UPDATE_FIXTURES").is_some() {
        std::fs::write(&path, actual).expect("write fixture");
        eprintln!("updated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}) — regenerate with TRICHECK_UPDATE_FIXTURES=1",
            path.display()
        )
    });
    if expected != actual {
        let first_diff = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map_or_else(
                || "line counts differ".to_string(),
                |i| {
                    format!(
                        "first differing line {}:\n  fixture: {}\n  actual:  {}",
                        i + 1,
                        expected.lines().nth(i).unwrap_or(""),
                        actual.lines().nth(i).unwrap_or("")
                    )
                },
            );
        panic!(
            "sweep classification drift against {name} — {first_diff}\n\
             If the change is intentional, regenerate fixtures with \
             TRICHECK_UPDATE_FIXTURES=1 and commit the diff."
        );
    }
}

/// Every cell of the full Figure 15 sweep (1,701 tests × 28 model cells,
/// per-family counts) matches the committed table.
#[test]
fn figure15_rows_match_committed_fixture() {
    let results = Sweep::new().run_riscv(&suite::full_suite());
    assert_matches_fixture("figure15_rows.csv", &report::to_csv(&results));
}

/// The §7 compiler-study counts ({leading,trailing}-sync × ARMv7 models
/// over the full suite) match the committed table, in both row and
/// aggregate form.
#[test]
fn sec7_counterexample_counts_match_committed_fixture() {
    let results = Sweep::new().run_power(&suite::full_suite());
    let mut out = report::power_table(&results);
    out.push('\n');
    out.push_str(&report::to_csv(&results));
    assert_matches_fixture("sec7_power_rows.txt", &out);
}

/// The x86 mapping study ({sc-atomics, relaxed} × the IR-defined TSO
/// model over the full suite) matches the committed table. The headline
/// facts this pins: TSO exhibits the store-buffering (sb) and
/// read-to-write-causality (rwc) reorderings under the unfenced relaxed
/// mapping — and zero bugs under the standard SC-atomics mapping.
#[test]
fn x86_tso_rows_match_committed_fixture() {
    let results = Sweep::new().run_x86(&suite::full_suite());
    let mut out = report::x86_table(&results);
    out.push('\n');
    out.push_str(&report::to_csv(&results));
    assert_matches_fixture("x86_tso_rows.txt", &out);

    // The headline claims, asserted directly so a fixture regeneration
    // cannot silently launder them away.
    use tricheck::core::StackKey;
    use tricheck::prelude::X86MappingStyle;
    let sc = StackKey::X86 {
        style: X86MappingStyle::ScAtomics,
    };
    let relaxed = StackKey::X86 {
        style: X86MappingStyle::Relaxed,
    };
    assert_eq!(
        results.bugs_for(sc, "x86-TSO"),
        0,
        "the SC-atomics mapping is sound on TSO"
    );
    assert!(
        results
            .row(relaxed, "x86-TSO", "sb")
            .is_some_and(|r| r.bugs == 1),
        "TSO permits SC store buffering under the unfenced mapping"
    );
    assert!(results.bugs_for(relaxed, "x86-TSO") > 0);
}
