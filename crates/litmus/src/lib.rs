//! Litmus-test infrastructure for TriCheck: a shared micro-IR for
//! multi-threaded straight-line programs, exhaustive candidate-execution
//! enumeration, and the litmus test generator from the paper's §3.2.
//!
//! # Overview
//!
//! TriCheck compares the behaviours a high-level language memory model
//! (C11) permits for a small concurrent program against the behaviours a
//! microarchitecture exhibits for the compiled version of that program.
//! Both levels share the same program shape — a handful of threads, each a
//! short straight-line sequence of loads, stores, read-modify-writes and
//! fences over a few shared locations — so this crate provides one
//! representation for both, generic over a per-instruction annotation type:
//! C11 memory orders ([`MemOrder`]) at the language level, or hardware
//! annotations (fences and AMO ordering bits, defined in `tricheck-isa`)
//! at the ISA level.
//!
//! The centrepiece is [`enumerate_executions`], which enumerates every
//! *candidate execution* of a program: an assignment of a source write to
//! every read (`rf`) plus a per-location total order over writes (`co`).
//! Memory models then act as consistency predicates over candidates; the
//! set of program outcomes a model allows is the set of register
//! valuations of its consistent candidates.
//!
//! Materialized candidate spaces are stored *columnar*: an
//! [`ExecutionSpace`] keeps its candidates in an [`ExecArena`] — one
//! skeleton `Execution` plus flat per-column buffers for the
//! candidate-varying `rf`/`co` (and derived `fr`) relation rows and
//! resolved locations/values — and serves views as `u32` index lists
//! over the arena. Scans rebind an [`ExecCursor`] per candidate instead
//! of cloning executions, so judging a space allocates nothing per
//! candidate and dropping it costs a handful of buffer frees. See the
//! [`arena`] module docs for the layout and its invariants.
//!
//! # Example: enumerate the outcomes of store buffering
//!
//! ```
//! use tricheck_litmus::{suite, enumerate_executions, MemOrder};
//!
//! let test = suite::sb([MemOrder::Rlx, MemOrder::Rlx, MemOrder::Rlx, MemOrder::Rlx]);
//! let mut outcomes = std::collections::BTreeSet::new();
//! enumerate_executions(test.program(), &mut |exec| {
//!     outcomes.insert(exec.outcome(test.observed()));
//!     true
//! });
//! // Without any consistency predicate, all 4 combinations of the two
//! // reads are candidate outcomes.
//! assert_eq!(outcomes.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod codec;
pub mod enumerate;
pub mod exec;
pub mod extra;
pub mod format;
pub mod mir;
pub mod order;
pub mod outcome;
pub mod space;
pub mod suite;
pub mod template;

pub use arena::{ExecArena, ExecCursor};
pub use codec::{AnnCodec, ByteReader, CodecError};
pub use enumerate::{
    core_consistent, count_executions, enumerate_executions, enumerate_executions_pruned,
    enumerate_matching, enumerate_matching_pruned, outcome_set, target_realizable, Enumeration,
};
pub use exec::{Event, EventKind, Execution};
pub use mir::{Expr, Instr, Loc, Program, ProgramError, Reg, RmwKind, Val};
pub use order::MemOrder;
pub use outcome::Outcome;
pub use space::{
    ConsistencyModel, ExecutionSpace, Fingerprint, OutcomeGroups, SpaceStats, SpaceView,
};
pub use template::{LitmusTest, SlotKind, Template};
