//! Engine bench: microarchitectural observability judgement (toolflow
//! Step 3) across the strongest and weakest models, on the tests whose
//! compiled forms are largest (IRIW with 10 fences).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tricheck_compiler::{compile, riscv_mapping};
use tricheck_isa::{RiscvIsa, SpecVersion};
use tricheck_litmus::suite;
use tricheck_uarch::UarchModel;

fn bench_uarch(c: &mut Criterion) {
    let mut group = c.benchmark_group("uarch_eval");
    let mapping = riscv_mapping(RiscvIsa::Base, SpecVersion::Curr);
    let mapping_a = riscv_mapping(RiscvIsa::BaseA, SpecVersion::Curr);
    let cases = [
        ("wrc", compile(&suite::fig3_wrc(), mapping).unwrap()),
        ("iriw", compile(&suite::fig4_iriw_sc(), mapping).unwrap()),
        (
            "iriw_amo",
            compile(&suite::fig4_iriw_sc(), mapping_a).unwrap(),
        ),
    ];
    for model in [
        UarchModel::wr(SpecVersion::Curr),
        UarchModel::rmm(SpecVersion::Curr),
        UarchModel::a9like(SpecVersion::Curr),
    ] {
        let model_name = model.name().split('/').next().unwrap().to_string();
        for (test_name, compiled) in &cases {
            group.bench_function(format!("observes/{model_name}/{test_name}"), |b| {
                b.iter(|| {
                    model.observes(black_box(compiled.program()), black_box(compiled.target()))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_uarch);
criterion_main!(benches);
