//! Quickstart: verify one litmus test across the full stack.
//!
//! Run with: `cargo run --example quickstart`

use tricheck::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a litmus test. Figure 3 of the paper: write-to-read
    //    causality with a release/acquire pair on the flag.
    let test = suite::fig3_wrc();
    println!("litmus test: {test}");

    // 2. Ask the C11 memory model about the target outcome (Step 1).
    let c11 = C11Model::new();
    println!(
        "C11 says the outcome is: {}",
        match c11.judge(&test) {
            C11Verdict::Permitted => "permitted",
            C11Verdict::Forbidden => "forbidden",
        }
    );

    // 3. Compile it to RISC-V with the Intuitive Base mapping (Step 2).
    let compiled = compile(&test, &BaseIntuitive)?;
    println!("\ncompiled for RISC-V Base (2016 spec):");
    println!("{}", format_program(compiled.program(), Asm::RiscV));

    // 4. Check observability on a RISC-V-compliant microarchitecture with
    //    shared store buffers (Step 3), and classify (Step 4).
    let stack = TriCheck::new(&BaseIntuitive, UarchModel::nwr(SpecVersion::Curr));
    let result = stack.verify(&test)?;
    println!("{result}");
    assert_eq!(result.classification(), Classification::Bug);

    // 5. Apply the paper's fix: cumulative fences in the ISA, refined
    //    mapping — and re-verify.
    let fixed = TriCheck::new(&BaseRefined, UarchModel::nwr(SpecVersion::Ours));
    let result = fixed.verify(&test)?;
    println!("\nafter the ISA refinement:\n{result}");
    assert_eq!(result.classification(), Classification::Equivalent);

    Ok(())
}
