//! The shared micro-IR: multi-threaded straight-line programs over shared
//! locations and thread-local registers.
//!
//! Both C11-level litmus tests and their compiled ISA-level counterparts
//! are values of [`Program<A>`] for different annotation types `A`.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// A thread-local register, assigned at most once per thread (litmus tests
/// are in single-assignment form).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A shared-memory location, identified by its address.
///
/// Addresses double as values so that litmus tests can store an address
/// into memory and later load through it (the address-dependency pattern
/// of the paper's Figure 13).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Loc(pub u64);

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            1 => write!(f, "x"),
            2 => write!(f, "y"),
            3 => write!(f, "z"),
            a => write!(f, "loc{a}"),
        }
    }
}

/// A runtime value. Values and addresses share one domain (see [`Loc`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Val(pub u64);

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<Loc> for Val {
    fn from(l: Loc) -> Val {
        Val(l.0)
    }
}

/// An operand: either a constant or a previously-assigned register.
///
/// Register operands induce syntactic address/data dependencies (§2.2 of
/// the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// A literal value (or address).
    Const(u64),
    /// The value of a register assigned by an earlier load in the same
    /// thread.
    Reg(Reg),
}

impl Expr {
    /// The register this expression depends on, if any.
    #[must_use]
    pub fn dep(&self) -> Option<Reg> {
        match self {
            Expr::Const(_) => None,
            Expr::Reg(r) => Some(*r),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Reg(r) => write!(f, "{r}"),
        }
    }
}

/// What a read-modify-write instruction writes back.
///
/// These two shapes are exactly the idioms the RISC-V manual blesses for
/// implementing C11 atomic loads and stores with AMOs (§5.2 of the paper):
/// an atomic load is an `AMOADD` of zero (writing back the value read) and
/// an atomic store is an `AMOSWAP` (writing a fresh value, discarding the
/// old one).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RmwKind {
    /// Write back exactly the value read (`amoadd` with addend zero).
    FetchAddZero,
    /// Write the given operand, ignoring the value read (`amoswap`).
    Swap(Expr),
}

/// One instruction of the micro-IR, annotated with `A` (a C11 memory order
/// or a hardware annotation).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Instr<A> {
    /// Load from `addr` into `dst`.
    Read {
        /// Destination register.
        dst: Reg,
        /// Address operand (register operands create address dependencies).
        addr: Expr,
        /// Level-specific annotation.
        ann: A,
    },
    /// Store `val` to `addr`.
    Write {
        /// Address operand.
        addr: Expr,
        /// Value operand (register operands create data dependencies).
        val: Expr,
        /// Level-specific annotation.
        ann: A,
    },
    /// Atomic read-modify-write of `addr`; the read value lands in `dst`.
    Rmw {
        /// Destination register for the value read.
        dst: Reg,
        /// Address operand.
        addr: Expr,
        /// What gets written back.
        kind: RmwKind,
        /// Level-specific annotation.
        ann: A,
    },
    /// A memory fence.
    Fence {
        /// Level-specific annotation.
        ann: A,
    },
}

impl<A> Instr<A> {
    /// The annotation carried by this instruction.
    pub fn ann(&self) -> &A {
        match self {
            Instr::Read { ann, .. }
            | Instr::Write { ann, .. }
            | Instr::Rmw { ann, .. }
            | Instr::Fence { ann } => ann,
        }
    }

    /// Rewrites the annotation type, leaving the shape untouched.
    pub fn map_ann<B>(self, f: &mut impl FnMut(A) -> B) -> Instr<B> {
        match self {
            Instr::Read { dst, addr, ann } => Instr::Read {
                dst,
                addr,
                ann: f(ann),
            },
            Instr::Write { addr, val, ann } => Instr::Write {
                addr,
                val,
                ann: f(ann),
            },
            Instr::Rmw {
                dst,
                addr,
                kind,
                ann,
            } => Instr::Rmw {
                dst,
                addr,
                kind,
                ann: f(ann),
            },
            Instr::Fence { ann } => Instr::Fence { ann: f(ann) },
        }
    }
}

/// Errors detected when validating a [`Program`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProgramError {
    /// A register is assigned more than once in a thread.
    RegisterReassigned {
        /// Thread index.
        tid: usize,
        /// The offending register.
        reg: Reg,
    },
    /// An expression reads a register that no earlier instruction in the
    /// thread assigns.
    UndefinedRegister {
        /// Thread index.
        tid: usize,
        /// The register that was read before assignment.
        reg: Reg,
    },
    /// The program has more events than the relation engine supports.
    TooManyEvents {
        /// Number of events the program would generate (including the
        /// implicit initialization writes).
        events: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::RegisterReassigned { tid, reg } => {
                write!(f, "register {reg} assigned twice in thread {tid}")
            }
            ProgramError::UndefinedRegister { tid, reg } => {
                write!(f, "register {reg} read before assignment in thread {tid}")
            }
            ProgramError::TooManyEvents { events } => {
                write!(
                    f,
                    "program has {events} events, exceeding the supported maximum of 64"
                )
            }
        }
    }
}

impl Error for ProgramError {}

/// A multi-threaded straight-line program over shared memory.
///
/// All declared locations are implicitly initialized to `0` before any
/// thread runs, matching litmus-test convention.
///
/// # Examples
///
/// ```
/// use tricheck_litmus::{Expr, Instr, Loc, Program, Reg};
///
/// // Message passing, annotations elided (unit).
/// let x = Loc(1);
/// let y = Loc(2);
/// let prog: Program<()> = Program::new(vec![
///     vec![
///         Instr::Write { addr: Expr::Const(x.0), val: Expr::Const(1), ann: () },
///         Instr::Write { addr: Expr::Const(y.0), val: Expr::Const(1), ann: () },
///     ],
///     vec![
///         Instr::Read { dst: Reg(0), addr: Expr::Const(y.0), ann: () },
///         Instr::Read { dst: Reg(1), addr: Expr::Const(x.0), ann: () },
///     ],
/// ], [])?;
/// assert_eq!(prog.threads().len(), 2);
/// assert_eq!(prog.locations(), &[x, y]);
/// # Ok::<(), tricheck_litmus::ProgramError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Program<A> {
    threads: Vec<Vec<Instr<A>>>,
    locations: Vec<Loc>,
}

impl<A> Program<A> {
    /// Builds and validates a program.
    ///
    /// The location set is the union of all constant addresses appearing
    /// in the program and the `extra_locations` (needed when a
    /// register-dependent address can evaluate to a location no constant
    /// names, e.g. location `0` reached through an uninitialized-looking
    /// register in the paper's Figure 13 test).
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if a register is assigned twice, an
    /// expression references an unassigned register, or the program is too
    /// large for the 64-event relation engine.
    pub fn new(
        threads: Vec<Vec<Instr<A>>>,
        extra_locations: impl IntoIterator<Item = Loc>,
    ) -> Result<Self, ProgramError> {
        let mut locations: BTreeSet<Loc> = extra_locations.into_iter().collect();
        let mut events = 0usize;
        for (tid, thread) in threads.iter().enumerate() {
            let mut assigned: BTreeSet<Reg> = BTreeSet::new();
            for instr in thread {
                let check_expr = |e: &Expr| -> Result<(), ProgramError> {
                    if let Some(reg) = e.dep() {
                        if !assigned.contains(&reg) {
                            return Err(ProgramError::UndefinedRegister { tid, reg });
                        }
                    }
                    Ok(())
                };
                match instr {
                    Instr::Read { dst, addr, .. } => {
                        check_expr(addr)?;
                        if let Expr::Const(a) = addr {
                            locations.insert(Loc(*a));
                        }
                        if !assigned.insert(*dst) {
                            return Err(ProgramError::RegisterReassigned { tid, reg: *dst });
                        }
                        events += 1;
                    }
                    Instr::Write { addr, val, .. } => {
                        check_expr(addr)?;
                        check_expr(val)?;
                        if let Expr::Const(a) = addr {
                            locations.insert(Loc(*a));
                        }
                        events += 1;
                    }
                    Instr::Rmw {
                        dst, addr, kind, ..
                    } => {
                        check_expr(addr)?;
                        if let RmwKind::Swap(v) = kind {
                            check_expr(v)?;
                        }
                        if let Expr::Const(a) = addr {
                            locations.insert(Loc(*a));
                        }
                        if !assigned.insert(*dst) {
                            return Err(ProgramError::RegisterReassigned { tid, reg: *dst });
                        }
                        events += 2; // read half + write half
                    }
                    Instr::Fence { .. } => {
                        events += 1;
                    }
                }
            }
        }
        let total = events + locations.len();
        if total > tricheck_rel::MAX_EVENTS {
            return Err(ProgramError::TooManyEvents { events: total });
        }
        Ok(Program {
            threads,
            locations: locations.into_iter().collect(),
        })
    }

    /// The threads of the program, in thread-id order.
    pub fn threads(&self) -> &[Vec<Instr<A>>] {
        &self.threads
    }

    /// The shared locations of the program, in address order. Each is
    /// implicitly initialized to `0`.
    pub fn locations(&self) -> &[Loc] {
        &self.locations
    }

    /// Rewrites every instruction annotation, preserving program shape.
    ///
    /// This is how compiler mappings are *not* applied — mappings change
    /// instruction counts; `map_ann` is for relabelling only (e.g. tagging
    /// C11 orders with extra metadata).
    pub fn map_ann<B>(self, mut f: impl FnMut(A) -> B) -> Program<B> {
        Program {
            threads: self
                .threads
                .into_iter()
                .map(|t| t.into_iter().map(|i| i.map_ann(&mut f)).collect())
                .collect(),
            locations: self.locations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(dst: u8, addr: u64) -> Instr<()> {
        Instr::Read {
            dst: Reg(dst),
            addr: Expr::Const(addr),
            ann: (),
        }
    }

    fn write(addr: u64, val: u64) -> Instr<()> {
        Instr::Write {
            addr: Expr::Const(addr),
            val: Expr::Const(val),
            ann: (),
        }
    }

    #[test]
    fn collects_locations_from_const_addresses() {
        let p = Program::new(vec![vec![write(1, 1), write(2, 1)], vec![read(0, 2)]], [])
            .expect("valid program");
        assert_eq!(p.locations(), &[Loc(1), Loc(2)]);
    }

    #[test]
    fn extra_locations_are_merged_and_deduplicated() {
        let p = Program::new(vec![vec![write(1, 1)]], [Loc(0), Loc(1)]).expect("valid");
        assert_eq!(p.locations(), &[Loc(0), Loc(1)]);
    }

    #[test]
    fn rejects_register_reassignment() {
        let err = Program::new(vec![vec![read(0, 1), read(0, 2)]], []).unwrap_err();
        assert_eq!(
            err,
            ProgramError::RegisterReassigned {
                tid: 0,
                reg: Reg(0)
            }
        );
    }

    #[test]
    fn rejects_undefined_register_reads() {
        let p: Result<Program<()>, _> = Program::new(
            vec![vec![Instr::Read {
                dst: Reg(1),
                addr: Expr::Reg(Reg(0)),
                ann: (),
            }]],
            [],
        );
        assert_eq!(
            p.unwrap_err(),
            ProgramError::UndefinedRegister {
                tid: 0,
                reg: Reg(0)
            }
        );
    }

    #[test]
    fn register_defined_earlier_in_thread_is_fine() {
        let p: Result<Program<()>, _> = Program::new(
            vec![vec![
                read(0, 1),
                Instr::Read {
                    dst: Reg(1),
                    addr: Expr::Reg(Reg(0)),
                    ann: (),
                },
            ]],
            [],
        );
        assert!(p.is_ok());
    }

    #[test]
    fn rejects_oversized_programs() {
        let thread: Vec<Instr<()>> = (0..70).map(|_| write(1, 1)).collect();
        let err = Program::new(vec![thread], []).unwrap_err();
        assert!(matches!(err, ProgramError::TooManyEvents { .. }));
    }

    #[test]
    fn rmw_counts_two_events() {
        // 31 RMWs = 62 events + 1 location = 63: fits. 32 RMWs = 65: too big.
        let rmw = |n: usize| -> Vec<Instr<()>> {
            (0..n)
                .map(|i| Instr::Rmw {
                    dst: Reg(i as u8),
                    addr: Expr::Const(1),
                    kind: RmwKind::FetchAddZero,
                    ann: (),
                })
                .collect()
        };
        assert!(Program::new(vec![rmw(31)], []).is_ok());
        assert!(Program::new(vec![rmw(32)], []).is_err());
    }
}
