//! Reproduces the paper's opening example (§1 Figure 1, §2): a C11
//! program whose compiled form misbehaves on ARM Cortex-A9 parts due to
//! the acknowledged read-after-read hazard, and ARM's recommended fix
//! (a `dmb` fence after relaxed atomic loads).

use tricheck_c11::C11Model;
use tricheck_compiler::{compile, CompileError, Mapping, PowerLeadingSync};
use tricheck_isa::{format_program, AccessTypes, Asm, FenceKind, HwAnnot};
use tricheck_litmus::{suite, Expr, Instr, MemOrder, Reg};
use tricheck_uarch::UarchModel;

/// The leading-sync ARMv7 mapping with ARM's hazard workaround: a full
/// fence after every (relaxed) atomic load.
struct ArmWithLdLdFix;

impl Mapping for ArmWithLdLdFix {
    fn name(&self) -> &'static str {
        "armv7-leading-sync+ldld-fix"
    }

    fn load(
        &self,
        dst: Reg,
        addr: Expr,
        mo: MemOrder,
    ) -> Result<Vec<Instr<HwAnnot>>, CompileError> {
        let mut seq = PowerLeadingSync.load(dst, addr, mo)?;
        if mo == MemOrder::Rlx {
            seq.push(Instr::Fence {
                ann: HwAnnot::Fence(FenceKind::CumulativeHeavy),
            });
        }
        Ok(seq)
    }

    fn store(
        &self,
        addr: Expr,
        val: Expr,
        mo: MemOrder,
        scratch: Reg,
    ) -> Result<Vec<Instr<HwAnnot>>, CompileError> {
        PowerLeadingSync.store(addr, val, mo, scratch)
    }
}

fn main() {
    // Figure 1's program is a same-address read-read test: the CoRR shape
    // with relaxed atomics.
    let test = suite::corr([MemOrder::Rlx; 4]);
    let c11 = C11Model::new();
    println!(
        "C11 program: {} — target outcome {}",
        test.name(),
        test.target()
    );
    println!(
        "C11 verdict: {}\n",
        if c11.permits_target(&test) {
            "permitted"
        } else {
            "forbidden (coherence)"
        }
    );

    let stock = compile(&test, &PowerLeadingSync).expect("compiles");
    println!(
        "compiled for ARMv7 (leading-sync):\n{}",
        format_program(stock.program(), Asm::Power)
    );

    let hazard = UarchModel::armv7_a9_ldld_hazard();
    let compliant = UarchModel::armv7_a9like();
    println!(
        "on {}: outcome {} — the Figure 1 misbehaviour",
        hazard.name(),
        if hazard.observes(stock.program(), stock.target()) {
            "OBSERVABLE"
        } else {
            "forbidden"
        }
    );
    println!(
        "on {}: outcome {} (ISA-compliant cores are fine)\n",
        compliant.name(),
        if compliant.observes(stock.program(), stock.target()) {
            "OBSERVABLE"
        } else {
            "forbidden"
        }
    );

    let fixed = compile(&test, &ArmWithLdLdFix).expect("compiles");
    println!(
        "with ARM's recommended fix (dmb after relaxed atomic loads):\n{}",
        format_program(fixed.program(), Asm::Power)
    );
    println!(
        "on {}: outcome {} — the fence workaround closes the hazard",
        hazard.name(),
        if hazard.observes(fixed.program(), fixed.target()) {
            "OBSERVABLE"
        } else {
            "forbidden"
        }
    );
    println!(
        "\n(the cost of this workaround is quantified by Figure 2: \
         run `cargo run --release -p tricheck-bench --bin fig2_sieve`)"
    );
    let _ = AccessTypes::R; // silence unused-import lints in minimal builds
}
