//! Authoring a custom litmus test and a custom microarchitecture
//! configuration — the downstream-user workflow for exploring an MCM
//! design point beyond the paper's seven-template suite.
//!
//! The test is ISA2, a transitive message-passing chain through *two*
//! release/acquire hops (not part of the paper's suite). Like WRC, it
//! needs cumulative releases on non-multi-copy-atomic machines, so the
//! 2016 RISC-V Base ISA cannot compile it correctly for such hardware.
//!
//! Run with: `cargo run --example custom_litmus`

use tricheck::litmus::{Expr, Instr, Outcome, Program, Reg, Val};
use tricheck::prelude::*;
use tricheck::uarch::{ReleasePredecessors, StoreAtomicity};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- A custom C11 litmus test, written directly in the micro-IR ---
    // ISA2: T0 publishes data x and releases f1; T1 acquires f1 and
    // releases f2; T2 acquires f2 and reads x.
    let x = 1u64;
    let f1 = 2u64;
    let f2 = 3u64;
    use MemOrder::{Acq, Rel, Rlx};
    let program = Program::new(
        vec![
            vec![
                Instr::Write {
                    addr: Expr::Const(x),
                    val: Expr::Const(1),
                    ann: Rlx,
                },
                Instr::Write {
                    addr: Expr::Const(f1),
                    val: Expr::Const(1),
                    ann: Rel,
                },
            ],
            vec![
                Instr::Read {
                    dst: Reg(0),
                    addr: Expr::Const(f1),
                    ann: Acq,
                },
                Instr::Write {
                    addr: Expr::Const(f2),
                    val: Expr::Const(1),
                    ann: Rel,
                },
            ],
            vec![
                Instr::Read {
                    dst: Reg(1),
                    addr: Expr::Const(f2),
                    ann: Acq,
                },
                Instr::Read {
                    dst: Reg(2),
                    addr: Expr::Const(x),
                    ann: Rlx,
                },
            ],
        ],
        [],
    )?;
    // The interesting outcome: both hops observed, data still missed.
    let target = Outcome::from_values([
        ((1, Reg(0)), Val(1)),
        ((2, Reg(1)), Val(1)),
        ((2, Reg(2)), Val(0)),
    ]);
    let test = LitmusTest::new("isa2+rlx+rel+acq+rel+acq+rlx", "isa2", program, target);

    let c11 = C11Model::new();
    println!("C11 verdict for {}: {:?}", test.name(), c11.judge(&test));

    // --- A custom microarchitecture from raw configuration knobs ---
    // In-order issue, but stores drain through buffers shared with a
    // neighbouring core (non-multi-copy-atomic) — the nWR shape, rebuilt
    // explicitly.
    let mut config = UarchConfig::nwr(SpecVersion::Curr);
    config.name = "custom-inorder-nMCA".to_string();
    assert_eq!(config.atomicity, StoreAtomicity::NMca);
    assert_eq!(
        config.release_predecessors,
        ReleasePredecessors::ProgramOrder
    );
    let machine = UarchModel::from_config(config);

    // --- Probe it through the full stack ---
    for (label, mapping) in [
        ("intuitive", &BaseIntuitive as &dyn Mapping),
        ("refined", &BaseRefined),
    ] {
        let compiled = compile(&test, mapping)?;
        let observable = machine.observes(compiled.program(), compiled.target());
        let permitted = c11.permits_target(&test);
        let verdict = match (permitted, observable) {
            (false, true) => "BUG — non-cumulative fences cannot relay the release chain",
            (true, false) => "overly strict",
            _ => "equivalent",
        };
        println!("{label:>10} mapping on {}: {verdict}", machine.name());
    }

    // The outcome-set view: everything this machine can produce under the
    // intuitive mapping.
    let compiled = compile(&test, &BaseIntuitive)?;
    let outcomes = machine.observable_outcomes(compiled.program(), compiled.observed());
    println!(
        "\nobservable outcomes on {} ({} total):",
        machine.name(),
        outcomes.len()
    );
    for o in &outcomes {
        println!("  {o}");
    }
    Ok(())
}
