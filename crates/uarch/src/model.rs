//! The axiomatic evaluation of candidate executions against a
//! microarchitecture configuration.
//!
//! # The `prop` construction for non-MCA models
//!
//! Multi-copy-atomic models get the strong propagation relation
//! `ppo ∪ fences ∪ rf(e) ∪ fr` (every ordering a store-atomic machine
//! enforces is globally agreed). Non-MCA models build `prop` from four
//! ingredients, mirroring how real weakly-ordered machines (and the
//! paper's shared-buffer/non-stalling-coherence µspec models) create
//! global ordering:
//!
//! 1. **Non-cumulative fences** split by the kind of ordering they give:
//!    *drain* edges (ending at a read of the fencing thread) force the
//!    predecessors globally and accept an `fre` prefix (a remote read
//!    missing a drained write precedes its drain point) — this forbids
//!    SB through `fence rw,rw` without smuggling in any cumulativity;
//!    *per-observer* edges (ending at a write) relay through exactly one
//!    reads-from hop and then only the observer's local order (WRC/IRIW
//!    stay observable — the 2016 RISC-V bugs).
//! 2. **Cumulative fences** follow the Herding-Cats Power construction:
//!    `prop_base = (Fc ∪ rfe;Fc) ; hb*`,
//!    `prop_cum = (prop_base ∩ WW) ∪ (com* ; prop_base* ; Fheavy ; hb*)`.
//! 3. **Release synchronization** (AMO `rl`): when an eligible load reads
//!    a release write, the release's predecessor set becomes visible to
//!    the loading core: edges `pred(w_rel) × {r}`. The ISA version picks
//!    the predecessor set (program order vs happens-before, §5.2.1) and
//!    the eligible readers (any load vs acquires only, §5.2.3).
//! 4. **SC-AMO visibility**: on A9like, `rfe` edges out of SC-AMO writes
//!    are globally agreed (the coherence protocol completed the AMO).

use std::collections::BTreeSet;
use std::fmt;
use std::sync::OnceLock;

use tricheck_isa::{HwAnnot, SpecVersion};
use tricheck_litmus::{
    outcome_set, ConsistencyModel, ExecArena, ExecCursor, Execution, ExecutionSpace, Outcome,
    Program, Reg,
};
use tricheck_rel::{BindingPool, CompiledModel, EvalScratch, EventSet, ModelIr, Relation};

use crate::config::{ReleasePredecessors, StoreAtomicity, UarchConfig};
use crate::ir::{build_uarch_ir, fence_edges, x86_tso_ir, HwBinding};

/// Why an execution is rejected by a microarchitecture model.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum UarchViolation {
    /// Per-location coherence (`acyclic(po_loc′ ∪ com)`) fails.
    ScPerLocation,
    /// An RMW was not atomic (`rmw ∩ (fr ; co) ≠ ∅`).
    Atomicity,
    /// Local happens-before has a cycle.
    Causality,
    /// A read observed a write "from the past" of a propagated write
    /// (`fre ; prop ; hb*` hits identity).
    Observation,
    /// Write propagation contradicts coherence (`co ∪ prop` cyclic).
    Propagation,
    /// The global SC-AMO order cannot exist (§4.2.2).
    ScAmoOrder,
}

impl fmt::Display for UarchViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UarchViolation::ScPerLocation => "SC-per-location violation",
            UarchViolation::Atomicity => "RMW atomicity violation",
            UarchViolation::Causality => "causality (hb) cycle",
            UarchViolation::Observation => "observation violation",
            UarchViolation::Propagation => "propagation violation",
            UarchViolation::ScAmoOrder => "no global SC-AMO order",
        };
        f.write_str(s)
    }
}

impl UarchViolation {
    /// Maps a violated IR axiom name back onto the typed violation. The
    /// microarchitecture models all share one axiom vocabulary (the
    /// crate-docs axioms), so an unknown name is a model-definition bug.
    #[must_use]
    pub fn from_axiom_name(name: &str) -> Self {
        match name {
            "ScPerLocation" => UarchViolation::ScPerLocation,
            "Atomicity" => UarchViolation::Atomicity,
            "Causality" => UarchViolation::Causality,
            "Observation" => UarchViolation::Observation,
            "Propagation" => UarchViolation::Propagation,
            "ScAmoOrder" => UarchViolation::ScAmoOrder,
            other => panic!("IR model uses an unknown axiom name '{other}'"),
        }
    }
}

impl std::error::Error for UarchViolation {}

/// A microarchitecture memory model: a declarative [`ModelIr`] judged
/// over hardware-level candidate executions.
///
/// Models come in two flavours. Knob-driven models wrap a
/// [`UarchConfig`] (the paper's Table 7 machines); their IR is compiled
/// from the knobs by [`build_uarch_ir`] on first use, and the original
/// imperative checker survives as [`UarchModel::check`] — the
/// differential oracle the property tests pin the compilation against.
/// Data-defined models ([`UarchModel::from_ir`], e.g.
/// [`UarchModel::x86_tso`]) *are* their IR: no config, no imperative
/// twin.
#[derive(Clone, Debug)]
pub struct UarchModel {
    name: String,
    kind: ModelKind,
    compiled: OnceLock<CompiledModel>,
}

/// The [`HwBinding`] bases that depend only on the program, not on the
/// candidate `rf`/`co` — hoisted into the compiled kernel's prelude.
/// `po-loc`/`same-loc` stay candidate-dependent: locations resolve per
/// candidate for dynamic-address programs.
const HW_INVARIANT_BASES: &[&str] = &[
    "po",
    "addr",
    "data",
    "rmw",
    "fence-noncum",
    "fence-cum",
    "fence-heavy",
    "R",
    "W",
    "F",
    "M",
    "init",
    "amo-aq",
    "amo-rl",
    "amo-sc",
];

#[derive(Clone, Debug)]
enum ModelKind {
    /// Knob-driven: IR compiled from the config lazily; imperative
    /// checker kept as the oracle.
    Config {
        config: UarchConfig,
        ir: OnceLock<ModelIr>,
    },
    /// Data-defined: the IR is the whole model.
    Ir(ModelIr),
}

impl UarchModel {
    /// Wraps an explicit configuration.
    #[must_use]
    pub fn from_config(config: UarchConfig) -> Self {
        UarchModel {
            name: config.name.clone(),
            kind: ModelKind::Config {
                config,
                ir: OnceLock::new(),
            },
            compiled: OnceLock::new(),
        }
    }

    /// Wraps a data-defined model: the IR is evaluated directly, with
    /// no configuration (and no imperative oracle) behind it.
    #[must_use]
    pub fn from_ir(ir: ModelIr) -> Self {
        UarchModel {
            name: ir.name().to_string(),
            kind: ModelKind::Ir(ir),
            compiled: OnceLock::new(),
        }
    }

    /// The x86-TSO machine, defined purely in the IR
    /// ([`x86_tso_ir`]): store-buffer forwarding relaxes W→R, `mfence`
    /// restores it, stores are multi-copy atomic.
    #[must_use]
    pub fn x86_tso() -> Self {
        Self::from_ir(x86_tso_ir())
    }

    /// Table 7 `WR` under the given spec version.
    #[must_use]
    pub fn wr(version: SpecVersion) -> Self {
        Self::from_config(UarchConfig::wr(version))
    }

    /// Table 7 `rWR`.
    #[must_use]
    pub fn rwr(version: SpecVersion) -> Self {
        Self::from_config(UarchConfig::rwr(version))
    }

    /// Table 7 `rWM`.
    #[must_use]
    pub fn rwm(version: SpecVersion) -> Self {
        Self::from_config(UarchConfig::rwm(version))
    }

    /// Table 7 `rMM`.
    #[must_use]
    pub fn rmm(version: SpecVersion) -> Self {
        Self::from_config(UarchConfig::rmm(version))
    }

    /// Table 7 `nWR`.
    #[must_use]
    pub fn nwr(version: SpecVersion) -> Self {
        Self::from_config(UarchConfig::nwr(version))
    }

    /// Table 7 `nMM`.
    #[must_use]
    pub fn nmm(version: SpecVersion) -> Self {
        Self::from_config(UarchConfig::nmm(version))
    }

    /// Table 7 `A9like`.
    #[must_use]
    pub fn a9like(version: SpecVersion) -> Self {
        Self::from_config(UarchConfig::a9like(version))
    }

    /// The ARMv7 model for the §7 compiler study.
    #[must_use]
    pub fn armv7_a9like() -> Self {
        Self::from_config(UarchConfig::armv7_a9like())
    }

    /// The ARMv7-A9 with the §1/§2 read-after-read hazard.
    #[must_use]
    pub fn armv7_a9_ldld_hazard() -> Self {
        Self::from_config(UarchConfig::armv7_a9_ldld_hazard())
    }

    /// All seven Table 7 models for one spec version.
    #[must_use]
    pub fn all_riscv(version: SpecVersion) -> Vec<Self> {
        UarchConfig::all_riscv(version)
            .into_iter()
            .map(Self::from_config)
            .collect()
    }

    /// The ARMv7 models of the §7 compiler study: the compliant
    /// Cortex-A9-like machine and its read-after-read-hazard variant
    /// (the §1–§2 erratum).
    #[must_use]
    pub fn all_armv7() -> Vec<Self> {
        UarchConfig::all_armv7()
            .into_iter()
            .map(Self::from_config)
            .collect()
    }

    /// The models of the x86 compiler-mapping study: just TSO (one
    /// microarchitecture faithfully implements the ISA's memory model).
    #[must_use]
    pub fn all_x86() -> Vec<Self> {
        vec![Self::x86_tso()]
    }

    /// The model's relaxation configuration, or `None` for a
    /// data-defined (IR-only) model.
    #[must_use]
    pub fn config(&self) -> Option<&UarchConfig> {
        match &self.kind {
            ModelKind::Config { config, .. } => Some(config),
            ModelKind::Ir(_) => None,
        }
    }

    /// The model's declarative IR — compiled from the config on first
    /// use for knob-driven models, the model itself for data-defined
    /// ones.
    #[must_use]
    pub fn ir(&self) -> &ModelIr {
        match &self.kind {
            ModelKind::Config { config, ir } => ir.get_or_init(|| build_uarch_ir(config)),
            ModelKind::Ir(ir) => ir,
        }
    }

    /// The model's IR lowered to a fused bitset kernel — compiled once
    /// per model instance on first use. Program-only bases
    /// ([`HW_INVARIANT_BASES`]) are hoisted into the kernel's prelude so
    /// an [`ExecutionSpace`] evaluates them once per program instead of
    /// once per candidate.
    #[must_use]
    pub fn compiled(&self) -> &CompiledModel {
        self.compiled
            .get_or_init(|| CompiledModel::compile(self.ir(), HW_INVARIANT_BASES))
    }

    /// The process-unique id of this model's compiled kernel (the key of
    /// per-space prelude caches and the unit of `--cache-stats` kernel
    /// counting).
    #[must_use]
    pub fn kernel_id(&self) -> u64 {
        self.compiled().kernel_id()
    }

    /// The model's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Checks one candidate execution, reporting the first violated
    /// axiom. For knob-driven models this is the *imperative* checker —
    /// kept as the differential oracle for the IR compilation (the
    /// production predicate, [`UarchModel::consistent`], evaluates the
    /// IR). Data-defined models are checked through their IR, with
    /// axiom names mapped onto [`UarchViolation`].
    ///
    /// # Errors
    ///
    /// Returns the violated axiom as a [`UarchViolation`].
    pub fn check(&self, exec: &Execution<HwAnnot>) -> Result<(), UarchViolation> {
        match &self.kind {
            ModelKind::Config { config, .. } => self.check_imperative(exec, config),
            ModelKind::Ir(ir) => ir
                .check(&HwBinding::new(exec))
                .map_err(UarchViolation::from_axiom_name),
        }
    }

    /// The imperative oracle for knob-driven models: the original
    /// hand-written evaluation of the crate-docs axioms.
    fn check_imperative(
        &self,
        exec: &Execution<HwAnnot>,
        config: &UarchConfig,
    ) -> Result<(), UarchViolation> {
        let rels = HwRelations::new(exec, config);

        if !rels.po_loc.union(&rels.com).is_acyclic() {
            return Err(UarchViolation::ScPerLocation);
        }
        if !exec.rmw().intersect(&rels.fr.compose(exec.co())).is_empty() {
            return Err(UarchViolation::Atomicity);
        }
        if !rels.hb.is_acyclic() {
            return Err(UarchViolation::Causality);
        }
        // `prop` carries its own (soundness-scoped) extensions, so no
        // further hb* suffix is applied here.
        if !rels.fre.compose(&rels.prop).is_irreflexive() {
            return Err(UarchViolation::Observation);
        }
        if !exec.co().union(&rels.prop).is_acyclic() {
            return Err(UarchViolation::Propagation);
        }
        if !rels.sc_amo.is_empty() {
            // The global SC-AMO order must be consistent with program
            // order, (transitive) happens-before, and *direct*
            // communication edges between SC AMOs (§4.2.2). Communication
            // chains through non-SC accesses are deliberately excluded:
            // on a non-MCA machine an `fr;rf` chain through a plain store
            // carries no global-time meaning (the store may have been
            // forwarded early to one observer only).
            let order = rels
                .hb
                .transitive_closure()
                .union(exec.po())
                .union(&rels.com)
                .restrict(rels.sc_amo, rels.sc_amo);
            if !order.is_acyclic() {
                return Err(UarchViolation::ScAmoOrder);
            }
        }
        Ok(())
    }

    /// `true` if the execution is realizable on this microarchitecture.
    ///
    /// This is the production predicate and evaluates the *compiled*
    /// kernel ([`UarchModel::compiled`]); the tree-walking IR
    /// interpreter and the imperative [`UarchModel::check`] survive as
    /// differential oracles, pinned against this path on every candidate
    /// execution of random suite subsets by `tests/model_properties.rs`.
    #[must_use]
    pub fn consistent(&self, exec: &Execution<HwAnnot>) -> bool {
        self.compiled().consistent(&HwBinding::new(exec))
    }

    /// Whether the target outcome is observable for the compiled program
    /// on this microarchitecture (Step 3 verdict).
    ///
    /// One-shot adapter over the execution-space engine: short-circuits
    /// the enumeration at the first realizable witness. When many models
    /// judge the same compiled program, prefer [`Self::observes_in`]
    /// over a shared space.
    #[must_use]
    pub fn observes(&self, prog: &Program<HwAnnot>, target: &Outcome) -> bool {
        ExecutionSpace::witness_search(prog, target, |e| self.consistent(e))
    }

    /// Whether `target` is observable, judged over a shared
    /// [`ExecutionSpace`] (the enumerate-once path used by sweeps).
    #[must_use]
    pub fn observes_in(&self, space: &ExecutionSpace<HwAnnot>, target: &Outcome) -> bool {
        self.permits(space, target)
    }

    /// The full set of outcomes observable on this microarchitecture.
    ///
    /// One-shot: streams the enumeration with O(1) execution storage.
    /// When many models judge one program, use
    /// [`ConsistencyModel::allowed_outcomes`] over a shared space.
    #[must_use]
    pub fn observable_outcomes(
        &self,
        prog: &Program<HwAnnot>,
        observed: &[(usize, Reg)],
    ) -> BTreeSet<Outcome> {
        outcome_set(prog, observed, |e| self.consistent(e))
    }

    /// The full observable-outcome set, judged over a shared
    /// [`ExecutionSpace`] (the enumerate-once path used by full-outcome
    /// sweeps: the space's cached outcome partition is shared by every
    /// model judging the program).
    #[must_use]
    pub fn observable_outcomes_in(
        &self,
        space: &ExecutionSpace<HwAnnot>,
        observed: &[(usize, Reg)],
    ) -> BTreeSet<Outcome> {
        self.allowed_outcomes(space, observed)
    }
}

impl ConsistencyModel for UarchModel {
    type Ann = HwAnnot;

    fn model_name(&self) -> &str {
        self.name()
    }

    fn consistent(&self, exec: &Execution<HwAnnot>) -> bool {
        UarchModel::consistent(self, exec)
    }

    // The space-judged paths stream the space's columnar views through
    // `CompiledModel::check_batch`: one cursor rebind per candidate (no
    // per-candidate `Execution` clone, `fr` served from the arena's
    // derived column) and one replay of the kernel's space-invariant
    // prelude per stream from the space's per-kernel cache.

    fn permits(&self, space: &ExecutionSpace<HwAnnot>, target: &Outcome) -> bool {
        let compiled = self.compiled();
        let view = space.matching(target);
        if view.is_empty() {
            return false;
        }
        let indices = view.indices();
        let mut pool = HwPool::over(view.arena()).expect("non-empty view has candidates");
        // The prelude lives for exactly this stream: batching already
        // shares it across every candidate of the (space, kernel) pair,
        // so caching it on the space would only defer the free to the
        // sweep's teardown burst.
        let prelude = compiled.prelude(&pool.bind(indices[0]));
        let mut witnessed = false;
        compiled.check_batch(
            &prelude,
            &mut pool,
            &indices,
            &mut EvalScratch::default(),
            |_, ok| {
                witnessed = ok;
                !ok
            },
        );
        witnessed
    }

    fn allowed_outcomes(
        &self,
        space: &ExecutionSpace<HwAnnot>,
        observed: &[(usize, Reg)],
    ) -> BTreeSet<Outcome> {
        let compiled = self.compiled();
        let view = space.executions();
        let groups = space.outcome_groups(observed);
        let Some(mut pool) = HwPool::over(view.arena()) else {
            return BTreeSet::new();
        };
        // Stream-local prelude: see `permits`.
        let prelude = compiled.prelude(&pool.bind(0));
        let mut scratch = EvalScratch::default();
        let mut out = BTreeSet::new();
        for (outcome, members) in groups.iter() {
            let mut witnessed = false;
            compiled.check_batch(&prelude, &mut pool, members, &mut scratch, |_, ok| {
                witnessed = ok;
                !ok
            });
            if witnessed {
                out.insert(outcome.clone());
            }
        }
        out
    }
}

/// A [`BindingPool`] over a columnar space arena: one reusable
/// [`ExecCursor`] rebinds the same skeleton execution per candidate and
/// hands [`HwBinding`]s the arena's precomputed `fr` column.
struct HwPool<'a> {
    cursor: ExecCursor<'a, HwAnnot>,
}

impl<'a> HwPool<'a> {
    fn over(arena: &'a ExecArena<HwAnnot>) -> Option<Self> {
        Some(HwPool {
            cursor: arena.cursor()?,
        })
    }
}

impl BindingPool for HwPool<'_> {
    type Binding<'b>
        = HwBinding<'b>
    where
        Self: 'b;

    fn universe(&self) -> usize {
        self.cursor.universe()
    }

    fn bind(&mut self, index: u32) -> HwBinding<'_> {
        self.cursor.at(index);
        HwBinding::with_fr(self.cursor.exec(), self.cursor.fr().clone())
    }
}

/// All derived relations for one (execution, config) pair.
struct HwRelations {
    po_loc: Relation,
    com: Relation,
    fr: Relation,
    fre: Relation,
    hb: Relation,
    prop: Relation,
    sc_amo: EventSet,
}

impl HwRelations {
    #[allow(clippy::too_many_lines)]
    fn new(exec: &Execution<HwAnnot>, cfg: &UarchConfig) -> Self {
        let n = exec.len();
        let reads = exec.reads();
        let writes = exec.writes();
        let accesses = reads.union(writes);
        let amo = |e: usize| exec.ann(e).and_then(HwAnnot::amo_bits);

        // --- Fence-induced edges, split by cumulativity class (shared
        // annotation bookkeeping with the IR binding) ---
        let (f_noncum, f_cum, f_heavy) = fence_edges(exec);
        let fences = f_noncum.union(&f_cum);

        // --- AMO aq/rl local ordering (one-way barriers, §4.2.1) ---
        let mut aq_edges = Relation::empty(n);
        let mut rl_edges = Relation::empty(n);
        for e in accesses.iter() {
            let Some(bits) = amo(e) else { continue };
            if bits.aq {
                for y in exec.po().successors(e).intersect(accesses).iter() {
                    aq_edges.insert(e, y);
                }
            }
            if bits.rl {
                for x in exec.po().inverse().successors(e).intersect(accesses).iter() {
                    rl_edges.insert(x, e);
                }
            }
        }

        // --- Preserved program order ---
        let same_loc = exec.same_loc();
        let po_acc = exec.po().restrict(accesses, accesses);
        let rr = Relation::cross(reads, reads);
        let rw = Relation::cross(reads, writes);
        let wr = Relation::cross(writes, reads);
        let ww = Relation::cross(writes, writes);

        let mut ppo = exec
            .addr()
            .union(exec.data())
            .union(exec.rmw())
            .union(&po_acc.intersect(&same_loc).intersect(&rw));
        if cfg.same_addr_rr_ordered {
            ppo = ppo.union(&po_acc.intersect(&same_loc).intersect(&rr));
        }
        if cfg.atomicity == StoreAtomicity::Mca {
            // No forwarding: a load waits for the pending same-address store.
            ppo = ppo.union(&po_acc.intersect(&same_loc).intersect(&wr));
        }
        if !cfg.relax_ww {
            ppo = ppo.union(&po_acc.intersect(&ww));
        }
        if !cfg.relax_rm {
            ppo = ppo.union(&po_acc.intersect(&rr.union(&rw)));
        }
        // Pipeline-enforced order, before AMO ordering bits: used for the
        // per-observer propagation relay, where release (`rl`) edges must
        // NOT participate — whether a release relays to a plain load is
        // exactly the §5.2.3 lazy-cumulativity knob, handled by `sync`.
        let pipeline_ppo = ppo.clone();
        ppo = ppo.union(&aq_edges).union(&rl_edges);

        // --- Happens-before ---
        let rfe = exec.rfe();
        let mut hb = ppo.union(&fences).union(&rfe);
        if cfg.atomicity == StoreAtomicity::Mca {
            hb = hb.union(&exec.rfi());
        }
        let hb_star = hb.reflexive_transitive_closure();

        // --- Communication relations ---
        let fr = exec.fr();
        let fre = exec.fre();
        let com = exec.rf().union(exec.co()).union(&fr);

        // --- Propagation ---
        let prop = match cfg.atomicity {
            StoreAtomicity::Mca => ppo
                .union(&fences)
                .union(exec.rf())
                .union(&fr)
                .transitive_closure(),
            StoreAtomicity::RMca => ppo
                .union(&fences)
                .union(&rfe)
                .union(&fr)
                .transitive_closure(),
            StoreAtomicity::NMca => {
                // Propagation-grade local order: pipeline edges, fences
                // and acquire edges (all anchored at globally-performed
                // reads or forced execution order). Release (`rl`) edges
                // are deliberately absent — a release's visibility
                // ordering reaches other threads only through the `sync`
                // term, which is where the §5.2.1/§5.2.3 release
                // semantics (cumulative? acquire-only?) are enforced.
                let local = pipeline_ppo.union(&fences).union(&aq_edges);
                // 1. Cumulative fences (Herding-Cats Power construction):
                //    recursive group-A/group-B membership justifies the
                //    full hb* extensions (§2.3.2).
                let prop_base = f_cum.union(&rfe.compose(&f_cum)).compose(&hb_star);
                let heavy = com
                    .reflexive_transitive_closure()
                    .compose(&prop_base.reflexive_transitive_closure())
                    .compose(&f_heavy)
                    .compose(&hb_star);
                // Cumulativity is recursive (§2.3.2), so cumulative
                // orderings extend through arbitrary hb chains.
                let cum = prop_base.intersect(&ww).union(&heavy).compose(&hb_star);
                // 2. Release synchronization (AMO rl bit): the release's
                //    predecessor set becomes visible to eligible readers.
                let sync = release_sync(exec, cfg, &hb, accesses);
                // 3. SC-AMO global visibility (A9like): reading a
                //    completed AMO's write is a globally-agreed fact.
                let mut scvis = Relation::empty(n);
                if cfg.sc_amo_writes_globally_visible {
                    for (w, r) in rfe.pairs() {
                        if amo(w).is_some_and(|b| b.sc) {
                            scvis.insert(w, r);
                        }
                    }
                }
                // Non-cumulative ordering splits by the kind of its
                // target:
                //  - *drain* edges (fence edges ending at a read of the
                //    fencing thread) force the predecessors globally: a
                //    thread cannot execute a read past a fence until the
                //    fenced writes have performed everywhere. These are
                //    global facts and compose freely.
                //  - *per-observer* edges (fence or pipeline edges ending
                //    at a write) only promise that each observer of the
                //    write sees the predecessors first: they may relay
                //    through exactly ONE reads-from hop, followed by the
                //    observing thread's local ordering — never further.
                let drain = f_noncum.restrict(accesses, reads);
                let per_observer = f_noncum.union(&pipeline_ppo).restrict(accesses, writes);

                // Edges with global meaning compose freely.
                let strong = cum
                    .union(&sync)
                    .union(&scvis)
                    .union(&local)
                    .union(&drain)
                    .transitive_closure();
                // One-hop observer relays.
                let relayed = strong
                    .maybe()
                    .compose(&per_observer)
                    .compose(&rfe)
                    .compose(&local.reflexive_transitive_closure());
                // A remote read missing a fence-drained write happened
                // before the write's (global) drain point.
                let fre_drain = fre.compose(&drain).compose(&strong.maybe());
                strong.union(&relayed).union(&fre_drain)
            }
        };

        // --- SC-AMO participants ---
        let sc_amo =
            EventSet::from_ids(n, accesses.iter().filter(|&e| amo(e).is_some_and(|b| b.sc)));

        // --- Per-location coherence order basis ---
        // Same-address reads leave program order only when the pipeline
        // actually reorders reads (relax R→M) *and* the ISA does not
        // require same-address load→load ordering (§5.1.3). Pairs the
        // thread orders by local means (fences, AMO bits, dependencies)
        // stay in the per-location check regardless: an in-order pair of
        // same-address reads can never observe coherence backwards.
        let mut po_loc = exec.po_loc();
        if cfg.relax_rm && !cfg.same_addr_rr_ordered {
            po_loc = po_loc.minus(&rr);
        }
        let local_order = ppo.union(&fences).transitive_closure();
        po_loc = po_loc.union(&local_order.intersect(&same_loc));

        HwRelations {
            po_loc,
            com,
            fr,
            fre,
            hb,
            prop,
            sc_amo,
        }
    }
}

/// Release-synchronization propagation edges: when an eligible load reads
/// a release write, the release's predecessors become visible to the
/// loading core before that load.
fn release_sync(
    exec: &Execution<HwAnnot>,
    cfg: &UarchConfig,
    hb: &Relation,
    accesses: EventSet,
) -> Relation {
    let n = exec.len();
    let mut sync = Relation::empty(n);
    let amo = |e: usize| exec.ann(e).and_then(HwAnnot::amo_bits);
    for w in exec.writes().iter() {
        let Some(bits) = amo(w) else { continue };
        if !bits.rl {
            continue;
        }
        let preds: Vec<usize> = match cfg.release_predecessors {
            ReleasePredecessors::ProgramOrder => exec
                .po()
                .inverse()
                .successors(w)
                .intersect(accesses)
                .iter()
                .collect(),
            ReleasePredecessors::HappensBefore => {
                let hb_plus = hb.transitive_closure();
                hb_plus
                    .inverse()
                    .successors(w)
                    .intersect(accesses)
                    .iter()
                    .collect()
            }
        };
        for r in exec.rfe().successors(w).iter() {
            let eligible = cfg.release_sync_any_load || amo(r).is_some_and(|b| b.aq);
            if !eligible {
                continue;
            }
            // Only the release's *predecessors* gain propagation edges.
            // The release itself may still be read early (e.g. from a
            // shared store buffer) without being globally performed.
            for &p in &preds {
                sync.insert(p, r);
            }
        }
    }
    sync
}

#[cfg(test)]
mod tests {
    use super::*;
    use tricheck_compiler::{compile, riscv_mapping, BaseAIntuitive, Mapping, PowerLeadingSync};
    use tricheck_isa::RiscvIsa::{Base, BaseA};
    use tricheck_isa::SpecVersion::{Curr, Ours};
    use tricheck_litmus::{suite, LitmusTest, MemOrder};

    fn observes(test: &LitmusTest, mapping: &dyn Mapping, model: &UarchModel) -> bool {
        let compiled = compile(test, mapping).expect("compiles");
        model.observes(compiled.program(), compiled.target())
    }

    fn base_curr(test: &LitmusTest, model: &UarchModel) -> bool {
        observes(test, riscv_mapping(Base, Curr), model)
    }

    fn base_ours(test: &LitmusTest, model: &UarchModel) -> bool {
        observes(test, riscv_mapping(Base, Ours), model)
    }

    fn basea_curr(test: &LitmusTest, model: &UarchModel) -> bool {
        observes(test, riscv_mapping(BaseA, Curr), model)
    }

    fn basea_ours(test: &LitmusTest, model: &UarchModel) -> bool {
        observes(test, riscv_mapping(BaseA, Ours), model)
    }

    // ---- §5.1.1: lack of cumulative lightweight fences (WRC) ----

    #[test]
    fn wrc_fig3_observable_on_nmca_models_under_current_base_isa() {
        let t = suite::fig3_wrc();
        for model in [
            UarchModel::nwr(Curr),
            UarchModel::nmm(Curr),
            UarchModel::a9like(Curr),
        ] {
            assert!(
                base_curr(&t, &model),
                "{} must exhibit the WRC bug",
                model.name()
            );
        }
    }

    #[test]
    fn wrc_fig3_unobservable_on_store_atomic_models() {
        let t = suite::fig3_wrc();
        for model in [
            UarchModel::wr(Curr),
            UarchModel::rwr(Curr),
            UarchModel::rwm(Curr),
            UarchModel::rmm(Curr),
        ] {
            assert!(!base_curr(&t, &model), "{} must forbid WRC", model.name());
        }
    }

    #[test]
    fn wrc_fig3_fixed_by_cumulative_lightweight_fences() {
        let t = suite::fig3_wrc();
        for model in [
            UarchModel::nwr(Ours),
            UarchModel::nmm(Ours),
            UarchModel::a9like(Ours),
        ] {
            assert!(
                !base_ours(&t, &model),
                "{} must forbid WRC after the fix",
                model.name()
            );
        }
    }

    // ---- §5.1.2: lack of cumulative heavyweight fences (IRIW) ----

    #[test]
    fn iriw_sc_observable_on_nmca_models_under_current_base_isa() {
        let t = suite::fig4_iriw_sc();
        for model in [
            UarchModel::nwr(Curr),
            UarchModel::nmm(Curr),
            UarchModel::a9like(Curr),
        ] {
            assert!(
                base_curr(&t, &model),
                "{} must exhibit the IRIW bug",
                model.name()
            );
        }
    }

    #[test]
    fn iriw_sc_fixed_by_cumulative_heavyweight_fences() {
        let t = suite::fig4_iriw_sc();
        for model in [
            UarchModel::nwr(Ours),
            UarchModel::nmm(Ours),
            UarchModel::a9like(Ours),
        ] {
            assert!(
                !base_ours(&t, &model),
                "{} must forbid IRIW after the fix",
                model.name()
            );
        }
    }

    #[test]
    fn iriw_lightweight_fences_insufficient() {
        // §5.1.2: cumulative *lightweight* fences between the load pairs do
        // not forbid IRIW — heavyweight cumulativity is required.
        use tricheck_isa::build::{lw, lwf, sw};
        use tricheck_litmus::{Loc, Program, Reg};
        let x = Loc(1);
        let y = Loc(2);
        let prog = Program::new(
            vec![
                vec![sw(x, 1)],
                vec![sw(y, 1)],
                vec![lw(Reg(0), x), lwf(), lw(Reg(1), y)],
                vec![lw(Reg(2), y), lwf(), lw(Reg(3), x)],
            ],
            [],
        )
        .unwrap();
        let target = suite::fig4_iriw_sc().target().clone();
        assert!(UarchModel::nmm(Ours).observes(&prog, &target));
    }

    // ---- §5.1.3: same-address load→load reordering (CoRR) ----

    #[test]
    fn corr_observable_on_read_reordering_models_under_curr() {
        let t = suite::corr([MemOrder::Rlx; 4]);
        for model in [
            UarchModel::rmm(Curr),
            UarchModel::nmm(Curr),
            UarchModel::a9like(Curr),
        ] {
            assert!(base_curr(&t, &model), "{} must exhibit CoRR", model.name());
        }
    }

    #[test]
    fn corr_unobservable_on_models_preserving_read_order() {
        let t = suite::corr([MemOrder::Rlx; 4]);
        for model in [
            UarchModel::wr(Curr),
            UarchModel::rwr(Curr),
            UarchModel::rwm(Curr),
            UarchModel::nwr(Curr),
        ] {
            assert!(!base_curr(&t, &model), "{} must forbid CoRR", model.name());
        }
    }

    #[test]
    fn corr_fixed_by_same_address_ordering_requirement() {
        let t = suite::corr([MemOrder::Rlx; 4]);
        for model in [
            UarchModel::rmm(Ours),
            UarchModel::nmm(Ours),
            UarchModel::a9like(Ours),
        ] {
            assert!(
                !base_ours(&t, &model),
                "{} must forbid CoRR after the fix",
                model.name()
            );
        }
    }

    // ---- §5.2.1: non-cumulative releases (Base+A WRC) ----

    #[test]
    fn wrc_base_a_observable_under_current_amo_releases() {
        let t = suite::fig3_wrc();
        for model in [
            UarchModel::nwr(Curr),
            UarchModel::nmm(Curr),
            UarchModel::a9like(Curr),
        ] {
            assert!(
                basea_curr(&t, &model),
                "{} must exhibit the Base+A WRC bug",
                model.name()
            );
        }
    }

    #[test]
    fn wrc_base_a_aq_rl_release_does_not_help() {
        // §5.2.1: mapping the release to AMO.aq.rl (store atomic, acquire
        // AND release) still fails on shared-buffer models, because the
        // release is not cumulative.
        use tricheck_isa::build::{amo_load, amo_store, lw, sw};
        use tricheck_isa::AmoBits;
        use tricheck_litmus::{Loc, Program, Reg};
        let (x, y) = (Loc(1), Loc(2));
        let prog = Program::new(
            vec![
                vec![sw(x, 1)],
                vec![lw(Reg(0), x), amo_store(Reg(10), y, 1, AmoBits::AQ_RL)],
                vec![amo_load(Reg(1), y, AmoBits::AQ), lw(Reg(2), x)],
            ],
            [],
        )
        .unwrap();
        let target = suite::fig3_wrc().target().clone();
        assert!(UarchModel::nmm(Curr).observes(&prog, &target));
        // With cumulative releases (riscv-ours semantics) it is forbidden.
        assert!(!UarchModel::nmm(Ours).observes(&prog, &target));
    }

    #[test]
    fn wrc_base_a_fixed_by_cumulative_releases() {
        let t = suite::fig3_wrc();
        for model in [
            UarchModel::nwr(Ours),
            UarchModel::nmm(Ours),
            UarchModel::a9like(Ours),
        ] {
            assert!(
                !basea_ours(&t, &model),
                "{} must forbid WRC after the fix",
                model.name()
            );
        }
    }

    // ---- §5.2.2: roach-motel movement for SC atomics ----

    #[test]
    fn roach_motel_forbidden_by_current_aq_rl_mapping() {
        // C11 allows the Figure 11 outcome, but AMO.aq.rl SC stores
        // over-order: Overly Strict on every model.
        let t = suite::fig11_mp_roach_motel();
        for model in UarchModel::all_riscv(Curr) {
            assert!(
                !basea_curr(&t, &model),
                "{} must (over-)forbid Figure 11",
                model.name()
            );
        }
    }

    #[test]
    fn roach_motel_allowed_after_sc_bit_decoupling() {
        // The refined AMO.rl.sc mapping lets the relaxed store sink below
        // the SC store on models that relax W→W.
        let t = suite::fig11_mp_roach_motel();
        for model in [
            UarchModel::rwm(Ours),
            UarchModel::rmm(Ours),
            UarchModel::nmm(Ours),
            UarchModel::a9like(Ours),
        ] {
            assert!(
                basea_ours(&t, &model),
                "{} must allow Figure 11",
                model.name()
            );
        }
        // Models that keep W→W order still cannot exhibit it (§6.1:
        // Overly Strict bars that "stay the same"). This includes the
        // shared store buffer: its FIFO drains the SC store first, and a
        // buffer-sharing reader would see both writes.
        for model in [
            UarchModel::wr(Ours),
            UarchModel::rwr(Ours),
            UarchModel::nwr(Ours),
        ] {
            assert!(
                !basea_ours(&t, &model),
                "{} cannot exploit roach-motel",
                model.name()
            );
        }
    }

    // ---- §5.2.3: lazy cumulativity ----

    #[test]
    fn lazy_cumulativity_fig13_forbidden_under_current_any_load_sync() {
        let t = suite::fig13_mp_lazy();
        for model in [
            UarchModel::nwr(Curr),
            UarchModel::nmm(Curr),
            UarchModel::a9like(Curr),
        ] {
            assert!(
                !basea_curr(&t, &model),
                "{} must (over-)forbid Figure 13",
                model.name()
            );
        }
    }

    #[test]
    fn lazy_cumulativity_fig13_allowed_under_acquire_only_sync() {
        let t = suite::fig13_mp_lazy();
        for model in [UarchModel::nmm(Ours), UarchModel::a9like(Ours)] {
            assert!(
                basea_ours(&t, &model),
                "{} must allow Figure 13",
                model.name()
            );
        }
    }

    #[test]
    fn lazy_cumulativity_is_invisible_on_stronger_models() {
        // On (r)MCA machines the Figure 13 outcome stays forbidden either
        // way: the dependency-ordered load chain is globally ordered. The
        // shared FIFO buffer (nWR) likewise drains the two releases in
        // order, so its readers cannot miss the first one.
        let t = suite::fig13_mp_lazy();
        for model in [
            UarchModel::wr(Ours),
            UarchModel::rwr(Ours),
            UarchModel::nwr(Ours),
        ] {
            assert!(
                !basea_ours(&t, &model),
                "{} must forbid Figure 13",
                model.name()
            );
        }
    }

    // ---- Base sanity: SB and MP behave like the paper's models ----

    #[test]
    fn sb_all_sc_forbidden_even_without_cumulativity() {
        // fence rw,rw gives W→R ordering without cumulativity.
        let t = suite::sb([MemOrder::Sc; 4]);
        for model in UarchModel::all_riscv(Curr) {
            assert!(
                !base_curr(&t, &model),
                "{} must forbid SB+fences",
                model.name()
            );
        }
    }

    #[test]
    fn sb_relaxed_observable_everywhere() {
        let t = suite::sb([MemOrder::Rlx; 4]);
        for version in [Curr, Ours] {
            for model in UarchModel::all_riscv(version) {
                assert!(
                    base_curr(&t, &model),
                    "{} must allow relaxed SB",
                    model.name()
                );
            }
        }
    }

    #[test]
    fn mp_release_acquire_never_buggy_on_riscv_models() {
        let t = suite::mp([MemOrder::Rlx, MemOrder::Rel, MemOrder::Acq, MemOrder::Rlx]);
        for model in UarchModel::all_riscv(Curr) {
            assert!(
                !base_curr(&t, &model),
                "{} must forbid MP rel/acq (Base)",
                model.name()
            );
            assert!(
                !basea_curr(&t, &model),
                "{} must forbid MP rel/acq (Base+A)",
                model.name()
            );
        }
    }

    #[test]
    fn mp_relaxed_observable_on_weak_models_only() {
        let t = suite::mp([MemOrder::Rlx; 4]);
        assert!(!base_curr(&t, &UarchModel::wr(Curr)));
        assert!(!base_curr(&t, &UarchModel::rwr(Curr)));
        assert!(base_curr(&t, &UarchModel::rwm(Curr)));
        assert!(base_curr(&t, &UarchModel::nmm(Curr)));
    }

    // ---- §4.3 point 7 / §6.1: A9like vs nMM on Base+A WRC ----

    #[test]
    fn a9like_amo_visibility_prevents_sc_publisher_wrc() {
        // WRC variant: SC store on T0, rel/acq chain. On A9like the SC
        // AMO's write is globally visible when T1 reads it, so the chain
        // is forbidden; the shared-buffer nMM still exhibits it.
        use MemOrder::{Acq, Rel, Rlx, Sc};
        let t = suite::wrc([Sc, Rlx, Rel, Acq, Rlx]);
        assert!(!basea_curr(&t, &UarchModel::a9like(Curr)));
        assert!(basea_curr(&t, &UarchModel::nmm(Curr)));
    }

    // ---- ARMv7: §1–§2 load→load hazard ----

    #[test]
    fn arm_ldld_hazard_reproduces_figure_1() {
        // Relaxed atomics compile to plain loads; the A9 hazard lets two
        // same-address loads reorder, exposing a C11-forbidden outcome.
        let t = suite::corr([MemOrder::Rlx; 4]);
        assert!(observes(
            &t,
            &PowerLeadingSync,
            &UarchModel::armv7_a9_ldld_hazard()
        ));
        assert!(!observes(
            &t,
            &PowerLeadingSync,
            &UarchModel::armv7_a9like()
        ));
    }

    #[test]
    fn arm_iriw_sc_forbidden_with_cumulative_fences() {
        let t = suite::fig4_iriw_sc();
        assert!(!observes(
            &t,
            &PowerLeadingSync,
            &UarchModel::armv7_a9like()
        ));
    }

    #[test]
    fn base_a_intuitive_and_model_versions_are_exercised() {
        // Guard: the Base+A intuitive mapping really produces AMOs (the
        // model distinctions above depend on it).
        let compiled = compile(&suite::fig3_wrc(), &BaseAIntuitive).unwrap();
        let has_amo = compiled
            .program()
            .threads()
            .iter()
            .flatten()
            .any(|i| matches!(i, tricheck_litmus::Instr::Rmw { .. }));
        assert!(has_amo);
    }
}
