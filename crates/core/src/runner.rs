//! The suite runner, rebuilt on the shared execution-space engine:
//! compile once per (test, mapping), enumerate once per distinct compiled
//! program, judge everywhere.
//!
//! # Architecture
//!
//! The paper's Figure 15 sweep evaluates every litmus test against 28
//! model cells (2 ISAs × 2 spec versions × 7 µarch models). Three phases
//! of that work depend on strictly less than the full (test, cell) pair,
//! so [`Sweep::run_riscv`] shares them through a [`SweepCache`]-style
//! set of concurrent caches instead of recomputing per cell:
//!
//! 1. **C11 verdicts** depend only on the test — computed once per test
//!    (a `OnceLock` per test).
//! 2. **Compilation** depends on (test, mapping) — four mappings cover
//!    all 28 cells, so each test compiles exactly four times (a
//!    `OnceLock` per pair).
//! 3. **Candidate enumeration** depends only on the *compiled program* —
//!    spaces are cached by the program's structural
//!    [`Fingerprint`](tricheck_litmus::Fingerprint), so all seven models
//!    of a (ISA, version) column share one enumeration, and any two
//!    mappings that emit identical code (e.g. all-relaxed variants under
//!    the intuitive and refined Base mappings) share one too.
//!
//! Work is scheduled as (test × stack) items over a work-stealing pool:
//! each worker owns a contiguous chunk of items and, when drained, steals
//! from the fullest remaining chunk. Items are laid out test-major so one
//! test's 28 cells are processed close together while its compiled
//! programs and spaces are hot. `SweepOptions::threads == 1` bypasses the
//! pool entirely for a fully deterministic serial run; the parallel path
//! produces bit-identical [`SweepResults`] regardless (results are
//! written by item index and aggregated in a fixed order).
//!
//! [`SweepResults::stats`] exposes the cache counters; the engine
//! equivalence tests assert `compile_calls == tests × mappings` and
//! `space_enumerations == distinct_programs` — i.e. nothing is ever
//! compiled or enumerated twice. [`Sweep::run_riscv_naive`] keeps the
//! pre-engine per-cell recompute path alive as the differential oracle
//! (and the baseline of `benches/pipeline.rs`).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use tricheck_c11::C11Model;
use tricheck_compiler::{compile, riscv_mapping, CompileError, CompiledTest, Mapping};
use tricheck_isa::{HwAnnot, RiscvIsa, SpecVersion};
use tricheck_litmus::{ExecutionSpace, LitmusTest};
use tricheck_uarch::UarchModel;

use crate::verdict::{Classification, TestResult};

/// Options controlling a sweep.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Worker threads (defaults to the machine's available parallelism).
    /// `1` runs serially and fully deterministically — no pool is
    /// spawned at all, which is the configuration to use under a
    /// debugger or when bisecting.
    pub threads: usize,
}

impl Default for SweepOptions {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        SweepOptions { threads }
    }
}

/// Classification counts for one (ISA, version, µarch model, litmus
/// family) cell — one bar of the paper's Figure 15.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SweepRow {
    /// RISC-V ISA (Base or Base+A).
    pub isa: RiscvIsa,
    /// Specification version (`riscv-curr` or `riscv-ours`).
    pub version: SpecVersion,
    /// µarch model name (e.g. `"nMM"`).
    pub model: String,
    /// Litmus template family (e.g. `"wrc"`).
    pub family: &'static str,
    /// Variants classified as bugs.
    pub bugs: usize,
    /// Variants classified as overly strict (and not bugs).
    pub overly_strict: usize,
    /// Variants where HLL and µarch agree.
    pub equivalent: usize,
}

impl SweepRow {
    /// Total variants in this cell.
    #[must_use]
    pub fn total(&self) -> usize {
        self.bugs + self.overly_strict + self.equivalent
    }
}

/// Cache-effectiveness counters for one sweep, proving the
/// enumerate-once/judge-everywhere contract.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SweepStats {
    /// Litmus tests swept.
    pub tests: usize,
    /// Full-stack model cells ((ISA, version, model) triples).
    pub cells: usize,
    /// C11 target verdicts computed (== `tests`: one per test, shared by
    /// every cell).
    pub c11_evaluations: usize,
    /// Compilations performed — exactly one per (test, mapping) pair.
    pub compile_calls: usize,
    /// Cell visits that reused an already-compiled program.
    pub compile_cache_hits: usize,
    /// Distinct compiled programs (execution spaces created).
    pub distinct_programs: usize,
    /// Cell visits served by an existing execution space, plus
    /// within-space reuse of materialized enumerations.
    pub space_cache_hits: usize,
    /// Enumeration passes actually run across all spaces — equals
    /// `distinct_programs` when every space is enumerated exactly once.
    pub space_enumerations: usize,
}

/// Aggregated results of a sweep.
#[derive(Clone, Debug, Default)]
pub struct SweepResults {
    rows: Vec<SweepRow>,
    stats: SweepStats,
}

impl SweepResults {
    /// All rows, ordered by (ISA, version, model, family).
    #[must_use]
    pub fn rows(&self) -> &[SweepRow] {
        &self.rows
    }

    /// The sweep's cache counters ([`SweepStats::default`] for the naive
    /// path, which caches nothing).
    #[must_use]
    pub fn stats(&self) -> &SweepStats {
        &self.stats
    }

    /// The row for an exact cell, if present. `model` matches the bare
    /// model name (`"nMM"`), ignoring the version suffix.
    #[must_use]
    pub fn cell(
        &self,
        isa: RiscvIsa,
        version: SpecVersion,
        model: &str,
        family: &str,
    ) -> Option<&SweepRow> {
        self.rows.iter().find(|r| {
            r.isa == isa
                && r.version == version
                && bare_model_name(&r.model) == model
                && r.family == family
        })
    }

    /// Total bugs across all families for one (ISA, version, model).
    #[must_use]
    pub fn total_bugs(&self, isa: RiscvIsa, version: SpecVersion, model: &str) -> usize {
        self.rows
            .iter()
            .filter(|r| r.isa == isa && r.version == version && bare_model_name(&r.model) == model)
            .map(|r| r.bugs)
            .sum()
    }

    /// Total bugs in the entire sweep.
    #[must_use]
    pub fn grand_total_bugs(&self) -> usize {
        self.rows.iter().map(|r| r.bugs).sum()
    }
}

fn bare_model_name(full: &str) -> &str {
    full.split('/').next().unwrap_or(full)
}

/// One full-stack model cell of a sweep.
struct Stack<'m> {
    isa: RiscvIsa,
    version: SpecVersion,
    /// Index into the sweep's deduplicated mapping list.
    mapping_idx: usize,
    mapping: &'m dyn Mapping,
    model: UarchModel,
}

/// The concurrent caches shared by every (test × stack) work item.
struct SweepCache<'t> {
    tests: &'t [LitmusTest],
    n_mappings: usize,
    c11: C11Model,
    /// One verdict per test, computed on first demand.
    c11_verdicts: Vec<OnceLock<bool>>,
    /// One compilation per (test, mapping): index `t * n_mappings + m`.
    compiled: Vec<OnceLock<Result<Arc<CompiledTest>, CompileError>>>,
    /// Execution spaces keyed by program fingerprint. Buckets hold every
    /// structurally-distinct program sharing a fingerprint, so a hash
    /// collision degrades to a linear probe instead of a wrong verdict.
    spaces: Mutex<HashMap<u64, Vec<Arc<ExecutionSpace<HwAnnot>>>>>,
    c11_evaluations: AtomicUsize,
    compile_calls: AtomicUsize,
    compile_cache_hits: AtomicUsize,
    space_lookup_hits: AtomicUsize,
}

impl<'t> SweepCache<'t> {
    fn new(tests: &'t [LitmusTest], n_mappings: usize) -> Self {
        SweepCache {
            tests,
            n_mappings,
            c11: C11Model::new(),
            c11_verdicts: (0..tests.len()).map(|_| OnceLock::new()).collect(),
            compiled: (0..tests.len() * n_mappings)
                .map(|_| OnceLock::new())
                .collect(),
            spaces: Mutex::new(HashMap::new()),
            c11_evaluations: AtomicUsize::new(0),
            compile_calls: AtomicUsize::new(0),
            compile_cache_hits: AtomicUsize::new(0),
            space_lookup_hits: AtomicUsize::new(0),
        }
    }

    /// Step 1 verdict for one test, computed at most once sweep-wide.
    fn c11_verdict(&self, t: usize) -> bool {
        *self.c11_verdicts[t].get_or_init(|| {
            self.c11_evaluations.fetch_add(1, Ordering::Relaxed);
            self.c11.permits_target(&self.tests[t])
        })
    }

    /// Step 2 result for one (test, mapping), compiled at most once.
    fn compiled(
        &self,
        t: usize,
        mapping_idx: usize,
        mapping: &dyn Mapping,
    ) -> Result<Arc<CompiledTest>, CompileError> {
        let slot = &self.compiled[t * self.n_mappings + mapping_idx];
        let mut fresh = false;
        let result = slot.get_or_init(|| {
            fresh = true;
            self.compile_calls.fetch_add(1, Ordering::Relaxed);
            compile(&self.tests[t], mapping).map(Arc::new)
        });
        if !fresh {
            self.compile_cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }

    /// The shared execution space for a compiled program, created at most
    /// once per structurally-distinct program.
    fn space_for(&self, compiled: &CompiledTest) -> Arc<ExecutionSpace<HwAnnot>> {
        let fingerprint = tricheck_litmus::Fingerprint::of(compiled.program());
        let mut spaces = self.spaces.lock().expect("space cache lock");
        let bucket = spaces.entry(fingerprint.as_u64()).or_default();
        if let Some(space) = bucket.iter().find(|s| s.program() == compiled.program()) {
            self.space_lookup_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(space);
        }
        let space = Arc::new(ExecutionSpace::new(compiled.program().clone()));
        bucket.push(Arc::clone(&space));
        space
    }

    /// Runs one (test, stack) work item through Steps 1–4.
    ///
    /// `share_spaces` selects the enumeration mode: a multi-cell sweep
    /// materializes each program's matching set once in a shared space
    /// (amortized across every model judging it), while a single-cell
    /// run has nothing to amortize and keeps the short-circuiting
    /// witness search that stops at the first consistent execution.
    fn process(&self, t: usize, stack: &Stack<'_>, share_spaces: bool) -> Option<TestResult> {
        let permitted = self.c11_verdict(t);
        let compiled = match self.compiled(t, stack.mapping_idx, stack.mapping) {
            Ok(compiled) => compiled,
            Err(_) => return None, // the paper's suite always compiles
        };
        let observable = if share_spaces {
            let space = self.space_for(&compiled);
            stack.model.observes_in(&space, compiled.target())
        } else {
            stack.model.observes(compiled.program(), compiled.target())
        };
        Some(TestResult::new(&self.tests[t], permitted, observable))
    }

    /// Drains the cache into sweep-level statistics.
    fn stats(&self, cells: usize) -> SweepStats {
        let spaces = self.spaces.lock().expect("space cache lock");
        let mut distinct_programs = 0;
        let mut space_enumerations = 0;
        let mut space_cache_hits = self.space_lookup_hits.load(Ordering::Relaxed);
        for space in spaces.values().flatten() {
            distinct_programs += 1;
            let s = space.stats();
            space_enumerations += s.enumerations;
            space_cache_hits += s.cache_hits;
        }
        SweepStats {
            tests: self.tests.len(),
            cells,
            c11_evaluations: self.c11_evaluations.load(Ordering::Relaxed),
            compile_calls: self.compile_calls.load(Ordering::Relaxed),
            compile_cache_hits: self.compile_cache_hits.load(Ordering::Relaxed),
            distinct_programs,
            space_cache_hits,
            space_enumerations,
        }
    }
}

/// Runs litmus suites through full-stack configurations.
#[derive(Clone, Debug, Default)]
pub struct Sweep {
    options: SweepOptions,
}

impl Sweep {
    /// A sweep with default options.
    #[must_use]
    pub fn new() -> Self {
        Sweep::default()
    }

    /// A sweep with explicit options.
    #[must_use]
    pub fn with_options(options: SweepOptions) -> Self {
        Sweep { options }
    }

    /// Evaluates one stack (mapping + µarch model) over a set of tests,
    /// returning per-test results. Tests the mapping cannot compile are
    /// skipped (the paper's suite always compiles).
    #[must_use]
    pub fn run_stack(
        &self,
        tests: &[LitmusTest],
        mapping: &dyn Mapping,
        model: &UarchModel,
    ) -> Vec<TestResult> {
        let stacks = vec![Stack {
            isa: RiscvIsa::Base, // unused by per-test results
            version: SpecVersion::Curr,
            mapping_idx: 0,
            mapping,
            model: model.clone(),
        }];
        let (results, _) = self.run_cells(tests, &stacks, 1);
        results.into_iter().flatten().collect()
    }

    /// The paper's full Figure 15 sweep: every Table 7 model × {Base,
    /// Base+A} × {riscv-curr, riscv-ours}, with the matching compiler
    /// mapping, aggregated per litmus family.
    ///
    /// Runs on the shared execution-space engine: each (test, mapping)
    /// pair is compiled exactly once and each distinct compiled program
    /// is enumerated exactly once across all 28 model cells — see
    /// [`SweepResults::stats`].
    #[must_use]
    pub fn run_riscv(&self, tests: &[LitmusTest]) -> SweepResults {
        let mut stacks = Vec::new();
        let mut mappings: Vec<&'static dyn Mapping> = Vec::new();
        for isa in [RiscvIsa::Base, RiscvIsa::BaseA] {
            for version in [SpecVersion::Curr, SpecVersion::Ours] {
                let mapping = riscv_mapping(isa, version);
                // Dedup by fat-pointer identity (address AND vtable): the
                // mappings are zero-sized statics, so bare addresses all
                // coincide, and dedup by name would let a name collision
                // reuse the wrong compiled programs. A duplicated vtable
                // across codegen units only costs a redundant cache column,
                // never a wrong reuse.
                #[allow(ambiguous_wide_pointer_comparisons)]
                let mapping_idx = match mappings
                    .iter()
                    .position(|m| std::ptr::eq(*m as *const dyn Mapping, mapping))
                {
                    Some(i) => i,
                    None => {
                        mappings.push(mapping);
                        mappings.len() - 1
                    }
                };
                for model in UarchModel::all_riscv(version) {
                    stacks.push(Stack {
                        isa,
                        version,
                        mapping_idx,
                        mapping,
                        model,
                    });
                }
            }
        }
        let (results, stats) = self.run_cells(tests, &stacks, mappings.len());

        // Aggregate in deterministic (stack, test) order, independent of
        // the parallel schedule that produced the results.
        let n_stacks = stacks.len();
        let mut rows = Vec::new();
        for (s, stack) in stacks.iter().enumerate() {
            let cell_results: Vec<TestResult> = (0..tests.len())
                .filter_map(|t| results[t * n_stacks + s].clone())
                .collect();
            rows.extend(aggregate(
                stack.isa,
                stack.version,
                stack.model.name(),
                &cell_results,
            ));
        }
        SweepResults { rows, stats }
    }

    /// The pre-engine sweep: identical cells to [`Sweep::run_riscv`], but
    /// every cell recompiles and re-enumerates from scratch.
    ///
    /// Kept as the differential oracle for the engine (the equivalence
    /// tests assert its rows match `run_riscv`'s exactly) and as the
    /// baseline of the pipeline benchmark. `stats()` is all zeros.
    #[must_use]
    pub fn run_riscv_naive(&self, tests: &[LitmusTest]) -> SweepResults {
        let c11 = self.c11_verdicts_naive(tests);
        let mut rows = Vec::new();
        for isa in [RiscvIsa::Base, RiscvIsa::BaseA] {
            for version in [SpecVersion::Curr, SpecVersion::Ours] {
                let mapping = riscv_mapping(isa, version);
                for model in UarchModel::all_riscv(version) {
                    let results = self.hw_results_naive(tests, &c11, mapping, &model);
                    rows.extend(aggregate(isa, version, model.name(), &results));
                }
            }
        }
        SweepResults {
            rows,
            stats: SweepStats::default(),
        }
    }

    /// Processes every (test × stack) item over the shared caches and the
    /// work-stealing pool, returning per-item results (test-major) plus
    /// cache statistics.
    fn run_cells(
        &self,
        tests: &[LitmusTest],
        stacks: &[Stack<'_>],
        n_mappings: usize,
    ) -> (Vec<Option<TestResult>>, SweepStats) {
        let cache = SweepCache::new(tests, n_mappings);
        let n_stacks = stacks.len();
        let n_items = tests.len() * n_stacks;
        let results: Vec<OnceLock<Option<TestResult>>> =
            (0..n_items).map(|_| OnceLock::new()).collect();

        // With a single cell there is no cross-model sharing to pay for:
        // keep the short-circuiting witness search per test.
        let share_spaces = n_stacks > 1;
        let process = |i: usize| {
            let (t, s) = (i / n_stacks, i % n_stacks);
            let result = cache.process(t, &stacks[s], share_spaces);
            results[i]
                .set(result)
                .expect("each work item is processed exactly once");
        };
        run_work_stealing(n_items, self.options.threads, &process);

        let stats = cache.stats(n_stacks);
        let results = results
            .into_iter()
            .map(|slot| slot.into_inner().expect("all work items processed"))
            .collect();
        (results, stats)
    }

    /// Step 1 verdicts for all tests, computed in parallel (naive path).
    fn c11_verdicts_naive(&self, tests: &[LitmusTest]) -> Vec<bool> {
        let hll = C11Model::new();
        parallel_map(tests, self.options.threads, |t| hll.permits_target(t))
    }

    fn hw_results_naive(
        &self,
        tests: &[LitmusTest],
        c11: &[bool],
        mapping: &dyn Mapping,
        model: &UarchModel,
    ) -> Vec<TestResult> {
        let indexed: Vec<(usize, &LitmusTest)> = tests.iter().enumerate().collect();
        parallel_map(&indexed, self.options.threads, |&(i, test)| {
            let observable = match compile(test, mapping) {
                Ok(compiled) => model.observes(compiled.program(), compiled.target()),
                Err(_) => return None,
            };
            Some(TestResult::new(test, c11[i], observable))
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

/// One worker's slice of the item range, drained from the front by its
/// owner and by thieves alike (overshooting `fetch_add` is harmless: an
/// index at or past `end` is simply not processed).
struct Chunk {
    next: AtomicUsize,
    end: usize,
}

impl Chunk {
    fn take(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.end).then_some(i)
    }

    fn remaining(&self) -> usize {
        self.end.saturating_sub(self.next.load(Ordering::Relaxed))
    }
}

/// Runs `process(0..n_items)` over `threads` workers with work stealing.
///
/// Items are dealt into contiguous per-worker chunks; a worker drains its
/// own chunk, then repeatedly steals from the chunk with the most items
/// remaining until the whole range is exhausted. `threads <= 1` runs the
/// items serially on the calling thread, in order — the deterministic
/// debugging mode `SweepOptions::threads` documents.
fn run_work_stealing(n_items: usize, threads: usize, process: &(impl Fn(usize) + Sync)) {
    if threads <= 1 || n_items <= 1 {
        for i in 0..n_items {
            process(i);
        }
        return;
    }
    let workers = threads.min(n_items);
    let chunk_size = n_items.div_ceil(workers);
    let chunks: Vec<Chunk> = (0..workers)
        .map(|w| Chunk {
            next: AtomicUsize::new(w * chunk_size),
            end: ((w + 1) * chunk_size).min(n_items),
        })
        .collect();
    let chunks = &chunks;
    std::thread::scope(|scope| {
        for w in 0..workers {
            scope.spawn(move || {
                let mut current = w;
                loop {
                    if let Some(i) = chunks[current].take() {
                        process(i);
                        continue;
                    }
                    // Own chunk drained: steal from the fullest victim.
                    let victim = (0..chunks.len())
                        .filter(|&v| v != current)
                        .max_by_key(|&v| chunks[v].remaining());
                    match victim {
                        Some(v) if chunks[v].remaining() > 0 => current = v,
                        _ => break,
                    }
                }
            });
        }
    });
}

fn aggregate(
    isa: RiscvIsa,
    version: SpecVersion,
    model: &str,
    results: &[TestResult],
) -> Vec<SweepRow> {
    let mut by_family: BTreeMap<&'static str, (usize, usize, usize)> = BTreeMap::new();
    // Preserve suite presentation order by first appearance.
    let mut order: Vec<&'static str> = Vec::new();
    for r in results {
        if !by_family.contains_key(r.family()) {
            order.push(r.family());
        }
        let entry = by_family.entry(r.family()).or_default();
        match r.classification() {
            Classification::Bug => entry.0 += 1,
            Classification::OverlyStrict => entry.1 += 1,
            Classification::Equivalent => entry.2 += 1,
        }
    }
    order
        .into_iter()
        .map(|family| {
            let (bugs, overly_strict, equivalent) = by_family[family];
            SweepRow {
                isa,
                version,
                model: model.to_string(),
                family,
                bugs,
                overly_strict,
                equivalent,
            }
        })
        .collect()
}

/// Applies `f` to every item, splitting the work over `threads` OS
/// threads. Order of results matches the input order. (Used by the naive
/// per-cell path; the engine path schedules finer-grained items through
/// [`run_work_stealing`].)
pub(crate) fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut results: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(|| c.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        results = handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect();
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tricheck_litmus::{suite, MemOrder};

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = parallel_map(&items, 7, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_threaded_fallback() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 1, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn work_stealing_processes_every_item_exactly_once() {
        for (n_items, threads) in [(0, 4), (1, 4), (7, 3), (100, 8), (64, 64), (13, 100)] {
            let counts: Vec<AtomicUsize> = (0..n_items).map(|_| AtomicUsize::new(0)).collect();
            run_work_stealing(n_items, threads, &|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "n_items={n_items} threads={threads}"
            );
        }
    }

    #[test]
    fn sweep_counts_wrc_bugs_on_nmm_curr_base() {
        // §6.1: 108 of the 243 WRC variants misbehave on each nMCA model
        // under the current Base ISA.
        let tests: Vec<_> = suite::wrc_template().instantiate_all().collect();
        let sweep = Sweep::new();
        let results = sweep.run_stack(
            &tests,
            riscv_mapping(RiscvIsa::Base, SpecVersion::Curr),
            &UarchModel::nmm(SpecVersion::Curr),
        );
        let bugs = results
            .iter()
            .filter(|r| r.classification() == Classification::Bug)
            .count();
        assert_eq!(bugs, 108);
    }

    #[test]
    fn sweep_counts_no_wrc_bugs_after_refinement() {
        let tests: Vec<_> = suite::wrc_template().instantiate_all().collect();
        let sweep = Sweep::new();
        let results = sweep.run_stack(
            &tests,
            riscv_mapping(RiscvIsa::Base, SpecVersion::Ours),
            &UarchModel::nmm(SpecVersion::Ours),
        );
        let bugs = results
            .iter()
            .filter(|r| r.classification() == Classification::Bug)
            .count();
        assert_eq!(bugs, 0);
    }

    #[test]
    fn aggregate_groups_by_family() {
        let tests = vec![
            suite::mp([MemOrder::Rlx; 4]),
            suite::mp([MemOrder::Sc; 4]),
            suite::sb([MemOrder::Rlx; 4]),
        ];
        let sweep = Sweep::new();
        let results = sweep.run_stack(
            &tests,
            riscv_mapping(RiscvIsa::Base, SpecVersion::Curr),
            &UarchModel::wr(SpecVersion::Curr),
        );
        let rows = aggregate(RiscvIsa::Base, SpecVersion::Curr, "WR", &results);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].family, "mp");
        assert_eq!(rows[0].total(), 2);
        assert_eq!(rows[1].family, "sb");
        assert_eq!(rows[1].total(), 1);
    }

    #[test]
    fn riscv_sweep_compiles_and_enumerates_exactly_once() {
        // The acceptance contract: one compile per (test, mapping), one
        // enumeration per distinct compiled program, across all 28 cells.
        let tests: Vec<_> = suite::mp_template().instantiate_all().collect();
        let results = Sweep::new().run_riscv(&tests);
        let stats = results.stats();
        assert_eq!(stats.tests, tests.len());
        assert_eq!(stats.cells, 28);
        assert_eq!(
            stats.c11_evaluations,
            tests.len(),
            "one C11 verdict per test"
        );
        assert_eq!(
            stats.compile_calls,
            tests.len() * 4,
            "one compile per (test, mapping)"
        );
        assert_eq!(
            stats.compile_cache_hits,
            tests.len() * 28 - stats.compile_calls,
            "every other cell visit reuses a compiled program"
        );
        assert_eq!(
            stats.space_enumerations, stats.distinct_programs,
            "each distinct compiled program is enumerated exactly once"
        );
        // The intuitive and refined Base mappings agree on relaxed-only
        // code, so deduplication must find strictly fewer programs than
        // (test, mapping) pairs.
        assert!(stats.distinct_programs < stats.compile_calls);
    }

    #[test]
    fn riscv_sweep_is_deterministic_across_thread_counts() {
        let tests: Vec<_> = suite::sb_template().instantiate_all().collect();
        let serial = Sweep::with_options(SweepOptions { threads: 1 }).run_riscv(&tests);
        for threads in [2, 5] {
            let parallel = Sweep::with_options(SweepOptions { threads }).run_riscv(&tests);
            assert_eq!(serial.rows(), parallel.rows(), "threads={threads}");
            assert_eq!(serial.stats(), parallel.stats(), "threads={threads}");
        }
    }

    #[test]
    fn engine_sweep_matches_naive_sweep_on_a_family() {
        let tests: Vec<_> = suite::corr_template().instantiate_all().collect();
        let sweep = Sweep::new();
        assert_eq!(
            sweep.run_riscv(&tests).rows(),
            sweep.run_riscv_naive(&tests).rows()
        );
    }
}
