//! Differential tests locking `run_sharded` to the single-process
//! engine: at every shard count the merged rows must be bit-identical
//! to `Sweep::run_matrix` over the same tests, in both outcome modes —
//! and on a warm shared store the summed per-shard stats must prove
//! that nothing is enumerated twice *across processes*.
//!
//! The planner spawns worker processes from `current_exe()`. For these
//! tests that binary is the libtest harness itself, so
//! [`shard_worker_probe`] is the worker entry point: an
//! environment-gated test the planner re-invokes with an exact filter,
//! the same self-spawning pattern as the cross-process fingerprint
//! probe in `tests/fingerprint_stability.rs`.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;
use tricheck_core::{OutcomeMode, Sweep, SweepOptions};
use tricheck_dist::{run_sharded, DistOptions, MatrixSpec};
use tricheck_litmus::{suite, LitmusTest};
use tricheck_trace::TraceReport;

const PROBE_ENV: &str = "TRICHECK_SHARD_WORKER_PROBE";

/// Worker half of the self-spawning pattern: inert in a normal test
/// run; with [`PROBE_ENV`] set it speaks the shard protocol over this
/// process's stdio and exits.
#[test]
fn shard_worker_probe() {
    if std::env::var_os(PROBE_ENV).is_none() {
        return;
    }
    // Errors surface to the parent via the marker line the worker
    // prints; the probe itself must not panic (a clean exit keeps the
    // harness chatter parseable).
    let _ = tricheck_dist::shard_worker_stdio();
}

/// Options that spawn *this test binary* as the worker.
fn probe_opts(shards: usize) -> DistOptions {
    DistOptions {
        shards,
        // Keep child pools small: several children run concurrently.
        threads: Some(2),
        worker_args: [
            "shard_worker_probe",
            "--exact",
            "--nocapture",
            "--test-threads",
            "1",
        ]
        .iter()
        .map(ToString::to_string)
        .collect(),
        worker_env: vec![(PROBE_ENV.to_string(), "1".to_string())],
        ..DistOptions::default()
    }
}

/// A unique, self-cleaning cache directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "tricheck-sharded-{label}-{}-{n}",
            std::process::id()
        ));
        fs::create_dir_all(&path).expect("create temp cache dir");
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn cached_suite() -> &'static [LitmusTest] {
    static SUITE: OnceLock<Vec<LitmusTest>> = OnceLock::new();
    SUITE.get_or_init(suite::full_suite)
}

/// Strategy: a random non-empty subset of the suite, spanning several
/// families so the merged rows aggregate multiple cells.
fn arb_subset() -> impl Strategy<Value = Vec<LitmusTest>> {
    proptest::collection::vec(0usize..cached_suite().len(), 10).prop_map(|picks| {
        picks
            .into_iter()
            .map(|i| cached_suite()[i].clone())
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `run_sharded(N ∈ {1, 2, 4})` is bit-identical to single-process
    /// `run_matrix` on random suite subsets, on both matrices.
    #[test]
    fn sharded_subsets_match_single_process(tests in arb_subset()) {
        for (spec, single) in [
            (MatrixSpec::Riscv, Sweep::new().run_riscv(&tests)),
            (MatrixSpec::Power, Sweep::new().run_power(&tests)),
        ] {
            for shards in [1, 2, 4] {
                let dist = run_sharded(spec, &tests, &probe_opts(shards))
                    .expect("sharded run succeeds");
                prop_assert!(
                    dist.results.rows() == single.rows(),
                    "{spec:?} shards={shards} diverged from single-process rows"
                );
            }
        }
    }
}

/// The full 1,701-test §7 Power study, sharded two ways, in both
/// outcome modes: rows bit-identical to the single-process engine.
#[test]
fn sharded_power_full_suite_matches_single_process_in_both_modes() {
    let tests = cached_suite();
    for mode in [OutcomeMode::Target, OutcomeMode::FullOutcomes] {
        let single = Sweep::with_options(SweepOptions {
            outcome_mode: mode,
            ..SweepOptions::default()
        })
        .run_power(tests);
        let opts = DistOptions {
            outcome_mode: mode,
            ..probe_opts(2)
        };
        let dist = run_sharded(MatrixSpec::Power, tests, &opts).expect("sharded run");
        assert_eq!(
            dist.results.rows(),
            single.rows(),
            "sharded §7 study diverged in {mode:?} mode"
        );
        assert_eq!(dist.results.stats().tests, tests.len());
        assert_eq!(dist.results.stats().cells, 4);
        assert_eq!(dist.shards.len(), 2, "both shards must have received work");
    }
}

/// The full Figure 15 matrix, sharded two ways: rows bit-identical to
/// the single-process engine (grand totals included).
#[test]
fn sharded_riscv_full_suite_matches_single_process() {
    let tests = cached_suite();
    let single = Sweep::new().run_riscv(tests);
    let dist = run_sharded(MatrixSpec::Riscv, tests, &probe_opts(2)).expect("sharded run");
    assert_eq!(dist.results.rows(), single.rows());
    assert_eq!(dist.results.grand_total_bugs(), single.grand_total_bugs());
}

/// The acceptance criterion: on a warm shared store, exactly-once holds
/// *across* processes — the merged per-shard stats show zero
/// enumerations and zero C11 evaluations, every shard served from the
/// store, with rows still bit-identical to single-process.
#[test]
fn warm_store_extends_exactly_once_across_processes() {
    let tests: Vec<LitmusTest> = cached_suite()
        .iter()
        .filter(|t| t.family() == "wrc")
        .cloned()
        .collect();
    let dir = TempDir::new("warm");
    let opts = DistOptions {
        cache_dir: Some(dir.path().to_path_buf()),
        ..probe_opts(3)
    };
    let single = Sweep::new().run_power(&tests);

    let cold = run_sharded(MatrixSpec::Power, &tests, &opts).expect("cold run");
    assert_eq!(cold.results.rows(), single.rows(), "cold == single-process");
    assert!(
        cold.results.stats().space_enumerations > 0,
        "cold run enumerates"
    );
    assert!(
        cold.store_stats().writes > 0,
        "cold run populates the store"
    );

    let warm = run_sharded(MatrixSpec::Power, &tests, &opts).expect("warm run");
    assert_eq!(warm.results.rows(), single.rows(), "warm == single-process");
    let stats = warm.results.stats();
    assert_eq!(
        stats.space_enumerations, 0,
        "no fingerprint may be enumerated twice on a warm store, across all shards"
    );
    assert_eq!(stats.c11_evaluations, 0, "no C11 verdict recomputed warm");
    let store = warm.store_stats();
    assert!(store.space_hits > 0);
    assert_eq!(store.space_misses, 0, "every shard fully served warm");
    assert_eq!(store.c11_misses, 0);
    assert_eq!(store.evictions, 0);
    // Per-shard: every shard that got work was individually warm.
    for shard in &warm.shards {
        assert_eq!(
            shard.stats.space_enumerations, 0,
            "shard {} enumerated on a warm store",
            shard.shard
        );
    }
}

/// Protocol v4 end to end: with `collect_trace` set, every spawned
/// shard ships a trace report whose counters agree with its own
/// `SweepStats`, and the coordinator's merged report ([`TraceReport`]
/// via `absorb_traces`) carries a per-worker breakdown whose totals
/// equal the field-wise sum of the per-worker reports.
#[test]
fn sharded_trace_reports_merge_to_per_worker_sums() {
    let tests: Vec<LitmusTest> = cached_suite()
        .iter()
        .filter(|t| t.family() == "mp")
        .cloned()
        .collect();
    let opts = DistOptions {
        collect_trace: true,
        ..probe_opts(2)
    };
    let dist = run_sharded(MatrixSpec::Riscv, &tests, &opts).expect("sharded run");
    assert_eq!(dist.shards.len(), 2, "both shards must have received work");
    for shard in &dist.shards {
        let trace = shard
            .trace
            .as_ref()
            .expect("collect_trace must produce a per-shard report");
        assert!(trace.wall_ns > 0, "worker reports its own wall clock");
        assert!(
            trace.phase("cell").is_some(),
            "worker traced its cell spans"
        );
        // The worker injects its SweepStats into the report's counters.
        assert_eq!(
            trace.counter("space_enumerations"),
            Some(shard.stats.space_enumerations as u64),
            "shard {} counters disagree with its stats",
            shard.shard
        );
    }

    let mut merged = TraceReport::default();
    dist.absorb_traces(&mut merged);
    assert_eq!(merged.workers.len(), 2, "per-worker breakdown retained");
    // Merged totals are exactly the sums of the per-worker reports.
    for phase in &merged.phases {
        let sum: u64 = merged
            .workers
            .iter()
            .filter_map(|w| w.report.phase(&phase.name))
            .map(|p| p.total_ns)
            .sum();
        assert_eq!(
            phase.total_ns, sum,
            "merged {} total must equal the per-worker sum",
            phase.name
        );
    }
    for (name, value) in &merged.counters {
        let sum: u64 = merged
            .workers
            .iter()
            .filter_map(|w| w.report.counter(name))
            .sum();
        assert_eq!(*value, sum, "merged counter {name} must equal the sum");
    }

    // Untraced runs ship no report at all.
    let untraced = run_sharded(MatrixSpec::Riscv, &tests, &probe_opts(2)).expect("untraced run");
    assert!(untraced.shards.iter().all(|s| s.trace.is_none()));
}

/// `shards == 1` must bypass process spawning entirely: these options
/// name a worker entry point that cannot exist, so completing at all
/// proves no child was spawned.
#[test]
fn single_shard_never_spawns_a_worker() {
    let tests: Vec<LitmusTest> = cached_suite()
        .iter()
        .filter(|t| t.family() == "sb")
        .cloned()
        .collect();
    let opts = DistOptions {
        shards: 1,
        worker_args: vec!["this-subcommand-does-not-exist".to_string()],
        ..DistOptions::default()
    };
    let dist = run_sharded(MatrixSpec::Power, &tests, &opts).expect("in-process run");
    assert_eq!(dist.results.rows(), Sweep::new().run_power(&tests).rows());
    assert_eq!(dist.shards.len(), 1);
}

/// Zero shards is a clean error, and a broken worker command surfaces
/// as a worker error instead of a hang or a wrong result.
#[test]
fn planner_reports_configuration_errors() {
    let tests: Vec<LitmusTest> = cached_suite()[..4].to_vec();
    let zero = DistOptions {
        shards: 0,
        ..DistOptions::default()
    };
    assert!(run_sharded(MatrixSpec::Power, &tests, &zero).is_err());

    // Two shards with a worker filter that matches no test: children
    // exit without a result line.
    let broken = DistOptions {
        worker_args: vec!["no_such_probe_test".to_string(), "--exact".to_string()],
        worker_env: vec![(PROBE_ENV.to_string(), "1".to_string())],
        ..probe_opts(2)
    };
    let err = run_sharded(MatrixSpec::Power, &tests, &broken)
        .expect_err("workers without a result line must error");
    assert!(
        err.to_string().contains("result"),
        "error must name the missing result: {err}"
    );
}
