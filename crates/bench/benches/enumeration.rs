//! Engine bench: candidate-execution enumeration per litmus template,
//! both at the C11 level and after compilation (where fence/AMO insertion
//! grows the event count).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tricheck_compiler::{compile, riscv_mapping};
use tricheck_isa::{RiscvIsa, SpecVersion};
use tricheck_litmus::{count_executions, suite, MemOrder};

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumeration");
    let tests = [
        ("mp", suite::mp([MemOrder::Sc; 4])),
        ("sb", suite::sb([MemOrder::Sc; 4])),
        ("wrc", suite::fig3_wrc()),
        ("rwc", suite::rwc([MemOrder::Sc; 5])),
        ("iriw", suite::fig4_iriw_sc()),
        ("corsdwi", suite::corsdwi([MemOrder::Rlx; 5])),
    ];
    for (name, test) in &tests {
        group.bench_function(format!("c11/{name}"), |b| {
            b.iter(|| count_executions(black_box(test.program())));
        });
    }
    for (name, test) in &tests {
        let compiled = compile(test, riscv_mapping(RiscvIsa::Base, SpecVersion::Curr))
            .expect("suite compiles");
        group.bench_function(format!("compiled_base/{name}"), |b| {
            b.iter(|| count_executions(black_box(compiled.program())));
        });
        let compiled_a = compile(test, riscv_mapping(RiscvIsa::BaseA, SpecVersion::Curr))
            .expect("suite compiles");
        group.bench_function(format!("compiled_base_a/{name}"), |b| {
            b.iter(|| count_executions(black_box(compiled_a.program())));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
