//! Regenerates the §7 compiler-mapping study: run the full litmus suite,
//! compiled to Power/ARMv7 with the leading-sync and the (supposedly
//! proven-correct) trailing-sync mappings, across the ARMv7
//! microarchitectures, and report the bugs each mapping exhibits.
//!
//! Runs on the cached sweep engine ([`Sweep::run_power`]): each test is
//! compiled once per mapping and each distinct Power program is
//! enumerated once across all {mapping × model} cells — the printed
//! cache statistics prove it. `tests/power_equivalence.rs` pins this
//! sweep's counts to the naive per-cell recompute path.

use tricheck_compiler::PowerSyncStyle;
use tricheck_core::{report, StackKey, Sweep, SweepResults};
use tricheck_litmus::suite;

fn style_bugs(results: &SweepResults, style: PowerSyncStyle, model: &str) -> usize {
    results.bugs_for(StackKey::Power { style }, model)
}

fn main() {
    let tests = suite::full_suite();
    let sweep = Sweep::new();
    println!(
        "§7 compiler-mapping study: {} tests × {{leading,trailing}}-sync × ARMv7 models\n",
        tests.len()
    );

    let (results, trace) = tricheck_bench::timed_report(|| sweep.run_power(&tests));
    println!("{}", report::power_table(&results));

    println!("counterexample families (C11-forbidden yet observable):");
    for row in results.rows().iter().filter(|r| r.bugs > 0) {
        println!(
            "  {} on {}: {}: {} variants",
            row.key.variant_label(),
            row.model,
            row.family,
            row.bugs
        );
    }
    println!();

    let s = results.stats();
    println!(
        "cached sweep: {} compilations ({} reused), {} distinct Power programs \
         enumerated {} times across {} cells",
        s.compile_calls, s.compile_cache_hits, s.distinct_programs, s.space_enumerations, s.cells,
    );
    println!("{}", trace.render_text());
    println!();

    let leading = style_bugs(&results, PowerSyncStyle::Leading, "ARMv7-A9like");
    let trailing = style_bugs(&results, PowerSyncStyle::Trailing, "ARMv7-A9like");
    if trailing > 0 && leading == 0 {
        println!(
            "=> trailing-sync is invalidated on ARMv7-A9like while leading-sync survives, \
             matching the paper's §7 finding."
        );
    } else {
        println!(
            "=> measured on ARMv7-A9like: leading={leading} bugs, trailing={trailing} bugs \
             (see EXPERIMENTS.md for discussion)."
        );
    }
    let hazard_leading = style_bugs(&results, PowerSyncStyle::Leading, "ARMv7-A9-ldld-hazard");
    if hazard_leading > 0 {
        println!(
            "=> on the A9 load→load-hazard machine even leading-sync misbehaves \
             ({hazard_leading} bugs) — the §1–§2 erratum."
        );
    }
}
