//! A herd/cat-style text parser for the model IR.
//!
//! [`parse_model`] parses exactly the grammar that [`ModelIr`]'s
//! `Display` implementation renders (see the [`crate::ir`] module docs),
//! so `parse(display(ir)) == ir` round-trips for every model — the
//! printed form of a model *is* its on-disk format. Hand-written files
//! may additionally use the ASCII aliases `|` (∪), `&` (∩), `^-1` (⁻¹)
//! and `^+` (⁺), and `#`/`//` line comments.
//!
//! Base-relation and base-set names are validated against a caller-
//! supplied [`Vocabulary`] (the names a [`crate::ir::BaseRelations`]
//! binding provides), so a typo is a spanned [`ParseError`] at load time
//! — with a "did you mean" suggestion — instead of an evaluation panic
//! deep inside a sweep.
//!
//! Operator precedence for unparenthesized input, loosest to tightest:
//! `∪` < `\` < `∩` < `;`/`×` < postfix (`⁻¹ ⁺ * ?`). `Display` output
//! fully parenthesizes every binary operator, so round-tripping does not
//! depend on these levels.
//!
//! # Examples
//!
//! ```
//! use tricheck_rel::parse::{parse_model, Vocabulary};
//!
//! let vocab = Vocabulary {
//!     rels: &["po", "rf", "co", "fr"],
//!     sets: &["R", "W"],
//! };
//! let ir = parse_model(
//!     "model toy-tso\n\
//!      \x20 ppo := po \\ (W × R)\n\
//!      \x20 Ghb: acyclic(ppo | rf | fr)\n",
//!     &vocab,
//! )
//! .unwrap();
//! assert_eq!(ir.name(), "toy-tso");
//! // Display renders the canonical grammar, which parses back to the
//! // same IR.
//! assert_eq!(parse_model(&ir.to_string(), &vocab).unwrap(), ir);
//! ```

use std::collections::HashSet;
use std::fmt;
use std::sync::{Mutex, OnceLock};

use crate::ir::{AxiomKind, ModelIr, RelExpr, SetExpr};

/// Interns a string, returning a `&'static str` with process lifetime.
///
/// The IR names definitions, axioms and bases with `&'static str` (so
/// the evaluator's caches can settle most probes with a pointer
/// comparison); models parsed at runtime get their names from this
/// interner. Each distinct name is leaked exactly once, so total leakage
/// is bounded by the vocabulary of loaded model files.
#[must_use]
pub fn intern(s: &str) -> &'static str {
    static INTERNER: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut set = INTERNER
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("interner poisoned");
    if let Some(&found) = set.get(s) {
        return found;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// The base names a [`crate::ir::BaseRelations`] binding provides —
/// what [`parse_model`] validates base references against.
#[derive(Clone, Copy, Debug)]
pub struct Vocabulary<'a> {
    /// Valid base-relation names (e.g. `po`, `rf`, `fence-cum`).
    pub rels: &'a [&'a str],
    /// Valid base-set names (e.g. `R`, `W`, `amo-rl`).
    pub sets: &'a [&'a str],
}

/// A spanned parse or validation error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line in the source text.
    pub line: usize,
    /// 1-based column (in characters) in the source line.
    pub col: usize,
    /// Human-readable description of what went wrong.
    pub msg: String,
}

impl ParseError {
    fn new(pos: Pos, msg: impl Into<String>) -> Self {
        ParseError {
            line: pos.0,
            col: pos.1,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// `(line, column)`, both 1-based.
pub type Pos = (usize, usize);

/// Levenshtein distance between two names.
///
/// Used for the parser's "did you mean" suggestions and by the lint
/// pass's shadow-adjacent-name rule (`W003`).
#[must_use]
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// The closest candidate within edit distance 2, rendered as a
/// suggestion suffix (or an empty string).
#[must_use]
pub fn suggest<'a>(name: &str, candidates: impl Iterator<Item = &'a str>) -> String {
    candidates
        .map(|c| (edit_distance(name, c), c))
        .filter(|&(d, _)| d <= 2)
        .min()
        .map(|(_, c)| format!(" (did you mean '{c}'?)"))
        .unwrap_or_default()
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Zero,     // 0   (the empty relation)
    EmptySet, // ∅
    LParen,
    RParen,
    LBracket,
    RBracket,
    Union,   // ∪ or |
    Inter,   // ∩ or &
    Minus,   // \
    Seq,     // ;
    Cross,   // ×
    Inverse, // ⁻¹ or ^-1
    Plus,    // ⁺ or ^+
    Star,    // *
    Opt,     // ?
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(n) => format!("'{n}'"),
            Tok::Zero => "'0'".into(),
            Tok::EmptySet => "'∅'".into(),
            Tok::LParen => "'('".into(),
            Tok::RParen => "')'".into(),
            Tok::LBracket => "'['".into(),
            Tok::RBracket => "']'".into(),
            Tok::Union => "'∪'".into(),
            Tok::Inter => "'∩'".into(),
            Tok::Minus => "'\\'".into(),
            Tok::Seq => "';'".into(),
            Tok::Cross => "'×'".into(),
            Tok::Inverse => "'⁻¹'".into(),
            Tok::Plus => "'⁺'".into(),
            Tok::Star => "'*'".into(),
            Tok::Opt => "'?'".into(),
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Lexes one expression (or line fragment). `line` is the 1-based source
/// line; `col0` the 1-based column of the fragment's first character.
fn lex(text: &str, line: usize, col0: usize) -> Result<Vec<(Tok, Pos)>, ParseError> {
    let mut toks = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let pos = (line, col0 + i);
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => push1(&mut toks, Tok::LParen, pos, &mut i),
            ')' => push1(&mut toks, Tok::RParen, pos, &mut i),
            '[' => push1(&mut toks, Tok::LBracket, pos, &mut i),
            ']' => push1(&mut toks, Tok::RBracket, pos, &mut i),
            '∪' | '|' => push1(&mut toks, Tok::Union, pos, &mut i),
            '∩' | '&' => push1(&mut toks, Tok::Inter, pos, &mut i),
            '\\' => push1(&mut toks, Tok::Minus, pos, &mut i),
            ';' => push1(&mut toks, Tok::Seq, pos, &mut i),
            '×' => push1(&mut toks, Tok::Cross, pos, &mut i),
            '⁺' => push1(&mut toks, Tok::Plus, pos, &mut i),
            '*' => push1(&mut toks, Tok::Star, pos, &mut i),
            '?' => push1(&mut toks, Tok::Opt, pos, &mut i),
            '∅' => push1(&mut toks, Tok::EmptySet, pos, &mut i),
            '0' => push1(&mut toks, Tok::Zero, pos, &mut i),
            '⁻' => {
                if chars.get(i + 1) == Some(&'¹') {
                    toks.push((Tok::Inverse, pos));
                    i += 2;
                } else {
                    return Err(ParseError::new(
                        pos,
                        "expected '¹' after '⁻' (inverse is '⁻¹')",
                    ));
                }
            }
            '^' => {
                // ASCII aliases: ^-1 (inverse), ^+ (transitive closure).
                if chars.get(i + 1) == Some(&'-') && chars.get(i + 2) == Some(&'1') {
                    toks.push((Tok::Inverse, pos));
                    i += 3;
                } else if chars.get(i + 1) == Some(&'+') {
                    toks.push((Tok::Plus, pos));
                    i += 2;
                } else {
                    return Err(ParseError::new(
                        pos,
                        "expected '^-1' (inverse) or '^+' (transitive closure) after '^'",
                    ));
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                let name: String = chars[start..i].iter().collect();
                toks.push((Tok::Ident(name), pos));
            }
            other => {
                return Err(ParseError::new(
                    pos,
                    format!("unexpected character '{other}'"),
                ));
            }
        }
    }
    Ok(toks)
}

fn push1(toks: &mut Vec<(Tok, Pos)>, tok: Tok, pos: Pos, i: &mut usize) {
    toks.push((tok, pos));
    *i += 1;
}

// ---------------------------------------------------------------------------
// Parser: tokens → an untyped expression tree
// ---------------------------------------------------------------------------

/// Untyped expression: relation/set distinction is resolved afterwards
/// by context (`×` operands and `[...]` contents are sets; everything
/// else at the top level is a relation).
#[derive(Debug)]
enum G {
    Name(String, Pos),
    Zero(Pos),
    EmptySet(Pos),
    Union(Box<G>, Box<G>),
    Inter(Box<G>, Box<G>),
    Minus(Box<G>, Box<G>),
    Seq(Box<G>, Box<G>, Pos),
    Cross(Box<G>, Box<G>),
    Inverse(Box<G>, Pos),
    Plus(Box<G>, Pos),
    Star(Box<G>, Pos),
    Opt(Box<G>, Pos),
    Restrict(Box<G>, Box<G>, Box<G>, Pos), // dom, inner, rng
}

impl G {
    /// The position to report when this node is used in the wrong
    /// context.
    fn pos(&self) -> Pos {
        match self {
            G::Name(_, p)
            | G::Zero(p)
            | G::EmptySet(p)
            | G::Seq(_, _, p)
            | G::Inverse(_, p)
            | G::Plus(_, p)
            | G::Star(_, p)
            | G::Opt(_, p)
            | G::Restrict(_, _, _, p) => *p,
            G::Union(a, _) | G::Inter(a, _) | G::Minus(a, _) | G::Cross(a, _) => a.pos(),
        }
    }
}

struct Parser {
    toks: Vec<(Tok, Pos)>,
    i: usize,
    /// Where the expression ends (for "unexpected end" errors).
    end: Pos,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|(t, _)| t)
    }

    fn bump(&mut self) -> Option<(Tok, Pos)> {
        let t = self.toks.get(self.i).cloned();
        self.i += 1;
        t
    }

    fn eat(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        match self.bump() {
            Some((t, _)) if t == *want => Ok(()),
            Some((t, p)) => Err(ParseError::new(
                p,
                format!(
                    "expected {} {what}, found {}",
                    want.describe(),
                    t.describe()
                ),
            )),
            None => Err(ParseError::new(
                self.end,
                format!(
                    "expected {} {what}, found end of expression",
                    want.describe()
                ),
            )),
        }
    }

    /// union level (loosest): `a ∪ b ∪ c`, left-associative.
    fn expr(&mut self) -> Result<G, ParseError> {
        let mut e = self.minus()?;
        while self.peek() == Some(&Tok::Union) {
            self.bump();
            e = G::Union(Box::new(e), Box::new(self.minus()?));
        }
        Ok(e)
    }

    fn minus(&mut self) -> Result<G, ParseError> {
        let mut e = self.inter()?;
        while self.peek() == Some(&Tok::Minus) {
            self.bump();
            e = G::Minus(Box::new(e), Box::new(self.inter()?));
        }
        Ok(e)
    }

    fn inter(&mut self) -> Result<G, ParseError> {
        let mut e = self.seq_cross()?;
        while self.peek() == Some(&Tok::Inter) {
            self.bump();
            e = G::Inter(Box::new(e), Box::new(self.seq_cross()?));
        }
        Ok(e)
    }

    fn seq_cross(&mut self) -> Result<G, ParseError> {
        let mut e = self.unary()?;
        loop {
            match self.peek() {
                Some(Tok::Seq) => {
                    let (_, p) = self.bump().expect("peeked");
                    e = G::Seq(Box::new(e), Box::new(self.unary()?), p);
                }
                Some(Tok::Cross) => {
                    self.bump();
                    e = G::Cross(Box::new(e), Box::new(self.unary()?));
                }
                _ => return Ok(e),
            }
        }
    }

    /// atom followed by postfix operators, left to right.
    fn unary(&mut self) -> Result<G, ParseError> {
        let mut e = self.atom()?;
        loop {
            match self.peek() {
                Some(Tok::Inverse) => {
                    let (_, p) = self.bump().expect("peeked");
                    e = G::Inverse(Box::new(e), p);
                }
                Some(Tok::Plus) => {
                    let (_, p) = self.bump().expect("peeked");
                    e = G::Plus(Box::new(e), p);
                }
                Some(Tok::Star) => {
                    let (_, p) = self.bump().expect("peeked");
                    e = G::Star(Box::new(e), p);
                }
                Some(Tok::Opt) => {
                    let (_, p) = self.bump().expect("peeked");
                    e = G::Opt(Box::new(e), p);
                }
                _ => return Ok(e),
            }
        }
    }

    fn atom(&mut self) -> Result<G, ParseError> {
        match self.bump() {
            Some((Tok::Ident(name), p)) => Ok(G::Name(name, p)),
            Some((Tok::Zero, p)) => Ok(G::Zero(p)),
            Some((Tok::EmptySet, p)) => Ok(G::EmptySet(p)),
            Some((Tok::LParen, _)) => {
                let e = self.expr()?;
                self.eat(&Tok::RParen, "to close the group")?;
                Ok(e)
            }
            Some((Tok::LBracket, p)) => {
                // [dom] inner [rng] — the inner expression binds like a
                // postfix chain; parenthesize anything looser.
                let dom = self.expr()?;
                self.eat(&Tok::RBracket, "to close the domain restriction")?;
                let inner = self.unary()?;
                self.eat(&Tok::LBracket, "to open the range restriction")?;
                let rng = self.expr()?;
                self.eat(&Tok::RBracket, "to close the range restriction")?;
                Ok(G::Restrict(
                    Box::new(dom),
                    Box::new(inner),
                    Box::new(rng),
                    p,
                ))
            }
            Some((t, p)) => Err(ParseError::new(
                p,
                format!(
                    "expected a relation or set expression, found {}",
                    t.describe()
                ),
            )),
            None => Err(ParseError::new(
                self.end,
                "expected a relation or set expression, found end of expression",
            )),
        }
    }
}

fn parse_fragment(text: &str, line: usize, col0: usize) -> Result<(G, Parser), ParseError> {
    let toks = lex(text, line, col0)?;
    let end = (line, col0 + text.chars().count());
    let mut p = Parser { toks, i: 0, end };
    let g = p.expr()?;
    Ok((g, p))
}

// ---------------------------------------------------------------------------
// Elaboration: untyped tree → RelExpr / SetExpr, with name validation
// ---------------------------------------------------------------------------

struct Elab<'v> {
    vocab: &'v Vocabulary<'v>,
    /// Names defined so far, in order (later defs may reference them),
    /// each with the position of its defining line.
    defs: Vec<(&'static str, Pos)>,
}

impl Elab<'_> {
    fn is_def(&self, name: &str) -> bool {
        self.defs.iter().any(|&(n, _)| n == name)
    }

    fn def_pos(&self, name: &str) -> Option<Pos> {
        self.defs.iter().find(|&&(n, _)| n == name).map(|&(_, p)| p)
    }

    fn rel(&self, g: &G) -> Result<RelExpr, ParseError> {
        Ok(match g {
            G::Name(name, p) => match name.as_str() {
                "id" => RelExpr::Id,
                n if self.is_def(n) => RelExpr::reference(intern(n)),
                n if self.vocab.rels.contains(&n) => RelExpr::base(intern(n)),
                "U" => {
                    return Err(ParseError::new(
                        *p,
                        "'U' is the universe set; sets may appear only inside [...] restrictions or as × operands".to_string(),
                    ))
                }
                n if self.vocab.sets.contains(&n) => {
                    return Err(ParseError::new(
                        *p,
                        format!(
                            "'{n}' is a base set, not a relation; sets may appear only inside [...] restrictions or as × operands"
                        ),
                    ))
                }
                n => {
                    let hint = suggest(
                        n,
                        self.vocab
                            .rels
                            .iter()
                            .copied()
                            .chain(self.defs.iter().map(|&(n, _)| n)),
                    );
                    return Err(ParseError::new(
                        *p,
                        format!("unknown base relation '{n}'{hint}"),
                    ));
                }
            },
            G::Zero(_) => RelExpr::Empty,
            G::EmptySet(p) => {
                return Err(ParseError::new(
                    *p,
                    "'∅' is the empty set; the empty relation is written '0'",
                ))
            }
            G::Union(a, b) => self.rel(a)?.union(self.rel(b)?),
            G::Inter(a, b) => self.rel(a)?.inter(self.rel(b)?),
            G::Minus(a, b) => self.rel(a)?.minus(self.rel(b)?),
            G::Seq(a, b, _) => self.rel(a)?.seq(self.rel(b)?),
            G::Cross(a, b) => RelExpr::cross(self.set(a)?, self.set(b)?),
            G::Inverse(a, _) => self.rel(a)?.inverse(),
            G::Plus(a, _) => self.rel(a)?.plus(),
            G::Star(a, _) => self.rel(a)?.star(),
            G::Opt(a, _) => self.rel(a)?.opt(),
            G::Restrict(dom, inner, rng, _) => {
                self.rel(inner)?.restrict(self.set(dom)?, self.set(rng)?)
            }
        })
    }

    fn set(&self, g: &G) -> Result<SetExpr, ParseError> {
        Ok(match g {
            G::Name(name, p) => match name.as_str() {
                "U" => SetExpr::Universe,
                n if self.vocab.sets.contains(&n) => SetExpr::base(intern(n)),
                n if self.vocab.rels.contains(&n) || self.is_def(n) || n == "id" => {
                    return Err(ParseError::new(
                        *p,
                        format!("'{n}' is a relation, not a set (expected a set here)"),
                    ))
                }
                n => {
                    let hint = suggest(n, self.vocab.sets.iter().copied());
                    return Err(ParseError::new(*p, format!("unknown base set '{n}'{hint}")));
                }
            },
            G::EmptySet(_) => SetExpr::Empty,
            G::Zero(p) => {
                return Err(ParseError::new(
                    *p,
                    "'0' is the empty relation; the empty set is written '∅'",
                ))
            }
            G::Union(a, b) => self.set(a)?.union(self.set(b)?),
            G::Inter(a, b) => self.set(a)?.inter(self.set(b)?),
            G::Minus(a, b) => self.set(a)?.minus(self.set(b)?),
            other => {
                return Err(ParseError::new(
                    other.pos(),
                    "this operator produces a relation, but a set is expected here (sets support only ∪, ∩ and \\)",
                ))
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Model-level parsing
// ---------------------------------------------------------------------------

/// Parses a single identifier (a def or axiom name), rejecting anything
/// that is not exactly one name token.
fn parse_name(text: &str, line: usize, col0: usize, what: &str) -> Result<String, ParseError> {
    let toks = lex(text, line, col0)?;
    match toks.as_slice() {
        [(Tok::Ident(name), _)] => Ok(name.clone()),
        [] => Err(ParseError::new((line, col0), format!("missing {what}"))),
        [(_, p), ..] => Err(ParseError::new(
            *p,
            format!("expected a single {what}, found '{}'", text.trim()),
        )),
    }
}

/// Source positions recorded while parsing a model, parallel to the
/// resulting [`ModelIr`]'s structure.
///
/// Lines and columns are 1-based and relative to the parsed text (a
/// stack-file loader re-anchors them to file coordinates). Positions
/// point at the def/axiom *name*, the natural anchor for diagnostics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ModelSpans {
    /// Position of the `model <name>` header line.
    pub model: Pos,
    /// Position of each definition, in [`ModelIr::defs`] order.
    pub defs: Vec<Pos>,
    /// Position of each axiom, in [`ModelIr::axioms`] order.
    pub axioms: Vec<Pos>,
}

/// Parses a complete model in the [`ModelIr`] `Display` grammar,
/// validating base names against `vocab`.
///
/// Blank lines and `#`/`//` comments are skipped. The first significant
/// line must be `model <name>`; each following line is either a
/// definition `name := expr` or an axiom
/// `Name: (acyclic|irreflexive|empty)(expr)`.
///
/// # Errors
///
/// A spanned [`ParseError`] naming the offending token — including
/// unknown base relations/sets (with a "did you mean" suggestion),
/// references to definitions that only appear later, and definitions
/// that shadow a base name or an earlier definition (which would make
/// the printed form ambiguous).
pub fn parse_model(src: &str, vocab: &Vocabulary) -> Result<ModelIr, ParseError> {
    parse_model_spanned(src, vocab).map(|(ir, _)| ir)
}

/// Like [`parse_model`], but also returns the source position of the
/// model header and every definition and axiom — the anchors the lint
/// pass attaches its diagnostics to.
///
/// # Errors
///
/// Exactly the errors of [`parse_model`].
pub fn parse_model_spanned(
    src: &str,
    vocab: &Vocabulary,
) -> Result<(ModelIr, ModelSpans), ParseError> {
    let mut ir: Option<ModelIr> = None;
    let mut spans = ModelSpans::default();
    let mut elab = Elab {
        vocab,
        defs: Vec::new(),
    };
    let mut axioms = 0usize;
    let mut last_line = 0usize;

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        last_line = lineno;
        // Strip comments; columns are counted on the raw line.
        let stripped = match raw.find('#').into_iter().chain(raw.find("//")).min() {
            Some(cut) => &raw[..cut],
            None => raw,
        };
        if stripped.trim().is_empty() {
            continue;
        }
        let indent_cols = stripped.chars().take_while(|c| c.is_whitespace()).count();
        let body = stripped.trim();
        let col0 = indent_cols + 1;

        let Some(model) = ir.as_mut() else {
            let Some(name) = body.strip_prefix("model") else {
                return Err(ParseError::new(
                    (lineno, col0),
                    "expected 'model <name>' as the first line",
                ));
            };
            let name = name.trim();
            if name.is_empty() {
                return Err(ParseError::new(
                    (lineno, col0),
                    "'model' needs a name (e.g. 'model my-tso')",
                ));
            }
            ir = Some(ModelIr::new(name));
            spans.model = (lineno, col0);
            continue;
        };

        if let Some(assign) = body.find(":=") {
            // Definition: name := expr
            let name = parse_name(&body[..assign], lineno, col0, "definition name")?;
            let name_pos = (lineno, col0);
            if name == "id" || name == "U" {
                return Err(ParseError::new(
                    name_pos,
                    format!("definition '{name}' shadows a built-in name"),
                ));
            }
            if vocab.rels.contains(&name.as_str()) || vocab.sets.contains(&name.as_str()) {
                return Err(ParseError::new(
                    name_pos,
                    format!(
                        "definition '{name}' shadows the base '{name}' provided by the binding"
                    ),
                ));
            }
            if let Some((first_line, first_col)) = elab.def_pos(&name) {
                return Err(ParseError::new(
                    name_pos,
                    format!(
                        "'{name}' is already defined (first definition at line {first_line}, column {first_col})"
                    ),
                ));
            }
            let rhs_col0 = col0 + body[..assign + 2].chars().count();
            let (g, mut p) = parse_fragment(&body[assign + 2..], lineno, rhs_col0)?;
            if let Some((t, pos)) = p.bump() {
                return Err(ParseError::new(
                    pos,
                    format!("unexpected {} after the definition body", t.describe()),
                ));
            }
            let expr = elab.rel(&g)?;
            let interned = intern(&name);
            elab.defs.push((interned, name_pos));
            spans.defs.push(name_pos);
            *model = std::mem::replace(model, ModelIr::new("")).define(interned, expr);
        } else if let Some(colon) = body.find(':') {
            // Axiom: Name: kind(expr)
            let name = parse_name(&body[..colon], lineno, col0, "axiom name")?;
            spans.axioms.push((lineno, col0));
            let rhs = &body[colon + 1..];
            let rhs_col0 = col0 + body[..colon + 1].chars().count();
            let toks = lex(rhs, lineno, rhs_col0)?;
            let end = (lineno, rhs_col0 + rhs.chars().count());
            let mut p = Parser { toks, i: 0, end };
            let kind = match p.bump() {
                Some((Tok::Ident(k), pos)) => match k.as_str() {
                    "acyclic" => AxiomKind::Acyclic,
                    "irreflexive" => AxiomKind::Irreflexive,
                    "empty" => AxiomKind::Empty,
                    other => {
                        let hint = suggest(other, ["acyclic", "irreflexive", "empty"].into_iter());
                        return Err(ParseError::new(
                            pos,
                            format!(
                                "unknown axiom kind '{other}' (expected acyclic, irreflexive or empty){hint}"
                            ),
                        ));
                    }
                },
                got => {
                    let pos = got.as_ref().map_or(end, |(_, p)| *p);
                    return Err(ParseError::new(
                        pos,
                        "expected an axiom kind: acyclic, irreflexive or empty",
                    ));
                }
            };
            p.eat(&Tok::LParen, "after the axiom kind")?;
            let g = p.expr()?;
            p.eat(&Tok::RParen, "to close the axiom")?;
            if let Some((t, pos)) = p.bump() {
                return Err(ParseError::new(
                    pos,
                    format!("unexpected {} after the axiom", t.describe()),
                ));
            }
            let expr = elab.rel(&g)?;
            *model = std::mem::replace(model, ModelIr::new("")).axiom(intern(&name), kind, expr);
            axioms += 1;
        } else {
            return Err(ParseError::new(
                (lineno, col0),
                "expected a definition ('name := expr') or an axiom ('Name: kind(expr)')",
            ));
        }
    }

    let model = ir.ok_or_else(|| {
        ParseError::new(
            (last_line.max(1), 1),
            "empty model text (expected 'model <name>')",
        )
    })?;
    if axioms == 0 {
        return Err(ParseError::new(
            (last_line.max(1), 1),
            format!("model '{}' has no axioms", model.name()),
        ));
    }
    Ok((model, spans))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocabulary<'static> {
        Vocabulary {
            rels: &["po", "po-loc", "rf", "rfe", "co", "fr", "fence-cum"],
            sets: &["R", "W", "M", "amo-rl"],
        }
    }

    fn parse(src: &str) -> Result<ModelIr, ParseError> {
        parse_model(src, &vocab())
    }

    #[test]
    fn parses_and_roundtrips_a_small_model() {
        let src = "model toy\n\
                   \x20 ppo := (po \\ (W × R))\n\
                   \x20 ghb := ((ppo ∪ rfe) ∪ fr)⁺\n\
                   \x20 Sc: acyclic(ghb)\n";
        let ir = parse(src).unwrap();
        assert_eq!(ir.name(), "toy");
        assert_eq!(ir.defs().len(), 2);
        assert_eq!(ir.axioms().len(), 1);
        assert_eq!(parse(&ir.to_string()).unwrap(), ir);
    }

    #[test]
    fn ascii_aliases_parse_to_the_same_ir() {
        let uni = parse("model m\n  x := ((po ∪ rf) ∩ po⁻¹)⁺\n  A: acyclic(x)\n").unwrap();
        let ascii = parse("model m\n  x := ((po | rf) & po^-1)^+\n  A: acyclic(x)\n").unwrap();
        assert_eq!(uni, ascii);
    }

    #[test]
    fn restriction_postfix_and_nesting_roundtrip() {
        for src in [
            "model m\n  x := [W]po[R]⁺\n  A: acyclic(x)\n",
            "model m\n  x := [W]po⁺[R]\n  A: acyclic(x)\n",
            "model m\n  x := [M][W]po[R][M]\n  A: acyclic(x)\n",
            "model m\n  x := [(amo-rl ∩ M)]po[U]\n  A: acyclic(x)\n",
            "model m\n  x := (0 ; id)?*⁻¹\n  A: empty(x)\n",
            "model m\n  x := ((W ∪ R) × (M \\ ∅))\n  A: irreflexive(x)\n",
        ] {
            let ir = parse(src).unwrap();
            assert_eq!(parse(&ir.to_string()).unwrap(), ir, "{src}");
        }
    }

    #[test]
    fn refs_resolve_only_backwards() {
        let ir = parse("model m\n  a := po\n  b := a ; rf\n  A: acyclic(b)\n").unwrap();
        assert_eq!(
            ir.defs()[1].1,
            RelExpr::reference("a").seq(RelExpr::base("rf"))
        );
        // Forward references are unknown names.
        let err = parse("model m\n  b := later\n  later := po\n  A: acyclic(b)\n").unwrap_err();
        assert!(err.msg.contains("unknown base relation 'later'"), "{err}");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unknown_names_are_spanned_with_suggestions() {
        let err = parse("model m\n  x := po ; rff\n  A: acyclic(x)\n").unwrap_err();
        assert_eq!((err.line, err.col), (2, 13));
        assert!(err.msg.contains("unknown base relation 'rff'"), "{err}");
        assert!(err.msg.contains("did you mean 'rf'"), "{err}");

        let err = parse("model m\n  x := [Q]po[R]\n  A: acyclic(x)\n").unwrap_err();
        assert!(err.msg.contains("unknown base set 'Q'"), "{err}");
    }

    #[test]
    fn set_and_relation_contexts_are_distinguished() {
        let err = parse("model m\n  x := W\n  A: acyclic(x)\n").unwrap_err();
        assert!(err.msg.contains("base set, not a relation"), "{err}");
        let err = parse("model m\n  x := [po]rf[R]\n  A: acyclic(x)\n").unwrap_err();
        assert!(err.msg.contains("relation, not a set"), "{err}");
        let err = parse("model m\n  x := ((po ; rf) × W)\n  A: acyclic(x)\n").unwrap_err();
        assert!(err.msg.contains("a set is expected here"), "{err}");
    }

    #[test]
    fn shadowing_definitions_are_rejected() {
        for (src, needle) in [
            (
                "model m\n  po := rf\n  A: acyclic(po)\n",
                "shadows the base",
            ),
            ("model m\n  W := rf\n  A: acyclic(W)\n", "shadows the base"),
            ("model m\n  id := rf\n  A: acyclic(id)\n", "built-in"),
            (
                "model m\n  a := po\n  a := rf\n  A: acyclic(a)\n",
                "already defined",
            ),
        ] {
            let err = parse(src).unwrap_err();
            assert!(err.msg.contains(needle), "{src} → {err}");
        }
    }

    #[test]
    fn duplicate_definition_errors_carry_both_spans() {
        let err = parse("model m\n  a := po\n\n  a := rf\n  A: acyclic(a)\n").unwrap_err();
        assert_eq!((err.line, err.col), (4, 3));
        assert!(
            err.msg.contains("first definition at line 2, column 3"),
            "{err}"
        );
    }

    #[test]
    fn spanned_parse_anchors_defs_and_axioms() {
        let src = "# header\nmodel m\n  a := po\n\n    b := a ; rf\n  A: acyclic(b)\n";
        let (ir, spans) = parse_model_spanned(src, &vocab()).unwrap();
        assert_eq!(spans.model, (2, 1));
        assert_eq!(spans.defs, vec![(3, 3), (5, 5)]);
        assert_eq!(spans.axioms, vec![(6, 3)]);
        assert_eq!(spans.defs.len(), ir.defs().len());
        assert_eq!(spans.axioms.len(), ir.axioms().len());
    }

    #[test]
    fn structural_errors_are_reported() {
        for (src, needle) in [
            ("", "empty model text"),
            ("x := po\n", "expected 'model <name>'"),
            ("model\n", "needs a name"),
            ("model m\n  just words\n", "expected a definition"),
            ("model m\n  a := po\n", "no axioms"),
            ("model m\n  A: cyclic(po)\n", "unknown axiom kind 'cyclic'"),
            ("model m\n  A: acyclic(po\n", "expected ')'"),
            ("model m\n  a := po po\n", "unexpected 'po'"),
            ("model m\n  a := (po\n", "expected ')'"),
            ("model m\n  a := po @ rf\n", "unexpected character '@'"),
        ] {
            let err = parse(src).unwrap_err();
            assert!(err.msg.contains(needle), "{src:?} → {err}");
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let src = "# a comment\n\nmodel m // trailing\n  a := po # def\n\n  A: acyclic(a)\n";
        let ir = parse(src).unwrap();
        assert_eq!(ir.name(), "m");
        assert_eq!(ir.defs().len(), 1);
    }

    #[test]
    fn intern_returns_stable_pointers() {
        let a = intern("some-runtime-name");
        let b = intern(&("some-runtime-".to_string() + "name"));
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_ptr(), b.as_ptr()));
    }
}
