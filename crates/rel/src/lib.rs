//! Finite binary relation algebra over small event sets.
//!
//! Axiomatic memory models — both language-level models like C11 and
//! hardware-level models in the style of Alglave et al.'s *Herding Cats*
//! framework — are phrased as constraints (acyclicity, irreflexivity,
//! emptiness) over derived binary relations between memory events:
//! program order, reads-from, coherence order, preserved program order,
//! propagation order, and so on.
//!
//! Litmus tests are tiny (a handful of events per thread), so this crate
//! represents a relation over `n ≤ 64` events as `n` rows of one `u64`
//! bitmask each. All the operators the models need — union, intersection,
//! difference, relational composition, inverse, restriction, reflexive and
//! transitive closures, acyclicity — are a few machine instructions per
//! row, which keeps exhaustive enumeration of candidate executions cheap.
//!
//! # The model IR
//!
//! On top of the algebra, the [`ir`] module makes whole models *data*:
//! a [`ModelIr`] is a list of named derived-relation definitions over
//! the operators above plus acyclicity/irreflexivity/emptiness
//! [`Axiom`]s, evaluated against any execution through a pluggable
//! [`BaseRelations`] binding. See [`ir`] for the grammar; as a worked
//! example, this is the complete §7 ARMv7 Cortex-A9-like machine as
//! `tricheck-uarch`'s `build_uarch_ir` compiles it from its relaxation
//! knobs (`Display` output, verbatim):
//!
//! ```text
//! model ARMv7-A9like
//!   pipeline-ppo := ((((addr ∪ data) ∪ rmw) ∪ [R]([M]po[M] ∩ same-loc)[W]) ∪ [R]([M]po[M] ∩ same-loc)[R])
//!   aq := [(amo-aq ∩ M)]po[M]
//!   rl := [M]po[(amo-rl ∩ M)]
//!   ppo := ((pipeline-ppo ∪ aq) ∪ rl)
//!   fences := (fence-noncum ∪ fence-cum)
//!   com := ((rf ∪ co) ∪ fr)
//!   hb := ((ppo ∪ fences) ∪ rfe)
//!   hb-star := hb*
//!   hb-plus := hb⁺
//!   local := ((pipeline-ppo ∪ fences) ∪ aq)
//!   prop-base := ((fence-cum ∪ (rfe ; fence-cum)) ; hb-star)
//!   heavy := (((com* ; prop-base*) ; fence-heavy) ; hb-star)
//!   cum := (((prop-base ∩ (W × W)) ∪ heavy) ; hb-star)
//!   sync := ([M]po[(amo-rl ∩ W)] ; [(amo-rl ∩ W)]rfe[U])
//!   scvis := [(amo-sc ∩ W)]rfe[U]
//!   drain := [M]fence-noncum[R]
//!   per-observer := [M](fence-noncum ∪ pipeline-ppo)[W]
//!   strong := ((((cum ∪ sync) ∪ scvis) ∪ local) ∪ drain)⁺
//!   relayed := (((strong? ; per-observer) ; rfe) ; local*)
//!   fre-drain := ((fre ; drain) ; strong?)
//!   prop := ((strong ∪ relayed) ∪ fre-drain)
//!   po-loc-all := (po-loc ∪ ((ppo ∪ fences)⁺ ∩ same-loc))
//!   ScPerLocation: acyclic((po-loc-all ∪ com))
//!   Atomicity: empty((rmw ∩ (fr ; co)))
//!   Causality: acyclic(hb)
//!   Observation: irreflexive((fre ; prop))
//!   Propagation: acyclic((co ∪ prop))
//!   ScAmoOrder: acyclic([(amo-sc ∩ M)]((hb-plus ∪ po) ∪ com)[(amo-sc ∩ M)])
//! ```
//!
//! Base relations (`po`, `rf`, `co`, `fr`, fence edge sets, …) and base
//! sets (`R`, `W`, `M`, AMO ordering-bit sets) come from the binding;
//! everything model-specific is in the definitions above. The C11 model
//! and the hand-written x86-TSO machine are phrased the same way.
//!
//! # The model parser
//!
//! The `Display` text above is not just documentation: the [`parse`]
//! module parses exactly that grammar back into a [`ModelIr`], so
//! `parse(display(ir)) == ir` round-trips and a model can live in a
//! `.cat`-style text file instead of Rust source. Entry points:
//!
//! - [`parse::parse_model`] — text → [`ModelIr`], validating every base
//!   name against a caller-supplied [`parse::Vocabulary`] (the names a
//!   [`BaseRelations`] binding provides) and reporting spanned
//!   [`parse::ParseError`]s with "did you mean" suggestions;
//! - [`parse::intern`] — the leak-once string interner that gives
//!   runtime-loaded names the `&'static str` lifetime the IR requires.
//!
//! Hand-written files may use ASCII aliases (`|`, `&`, `^-1`, `^+`) and
//! `#`/`//` comments; see the [`parse`] module docs for the precedence
//! table and a worked example. `tricheck-core`'s registry builds on this
//! to load whole *stack* definition files (mapping table + model text)
//! at runtime — see `models/x86-tso.stack` in the repository root for a
//! complete example, loadable with `tricheck sweep --stack`.
//!
//! # The model compiler
//!
//! In production the tree-walking [`ir`] evaluator is only the
//! *differential oracle*: the [`compile`] module lowers each `ModelIr`
//! once into a [`CompiledModel`] — a flat, SSA-style program of bitset
//! kernels. The compile pipeline interns every base and definition name
//! to a dense index (no per-check string probes), hash-conses the
//! dataflow graph so shared subterms are computed once per evaluation
//! (CSE), fuses `∪`/`∩`/`\` chains into single n-ary passes over the
//! `u64` relation words, and hoists every operation reachable only from
//! *space-invariant* bases (program-derived: `po`, dependencies, fence
//! edges, annotation sets) into a per-program prelude that an execution
//! space evaluates once and replays across all candidate executions.
//! At judgement time every body operation writes into a reusable
//! [`EvalScratch`] slot, so a query loop over one program's candidates
//! allocates nothing per candidate. The compiled path judges a
//! candidate below the cost of the hand-written imperative checkers
//! (see `benches/model_eval.rs`), so "models as data" is free at sweep
//! time.
//!
//! # Examples
//!
//! ```
//! use tricheck_rel::{EventSet, Relation};
//!
//! // po = {0→1, 1→2}; its transitive closure gains 0→2.
//! let po = Relation::from_pairs(3, [(0, 1), (1, 2)]);
//! let po_plus = po.transitive_closure();
//! assert!(po_plus.contains(0, 2));
//! assert!(po_plus.is_acyclic());
//!
//! // Adding the back-edge 2→0 creates a cycle.
//! let mut cyclic = po;
//! cyclic.insert(2, 0);
//! assert!(!cyclic.is_acyclic());
//!
//! // Restrict a relation to a subset of events.
//! let writes = EventSet::from_ids(3, [0, 2]);
//! let ww = po_plus.restrict(writes, writes);
//! assert!(ww.contains(0, 2) && !ww.contains(0, 1));
//! ```
//!
//! # Lint rules
//!
//! The [`lint`] module runs a static-analysis pass over a [`ModelIr`]
//! — an abstract interpreter on a definitely-empty / definitely-
//! irreflexive / definitely-acyclic lattice with domain/range sort
//! inference — and reports spanned diagnostics without enumerating a
//! single execution. `tricheck lint FILE` and the stack-file loader
//! surface it; the rules:
//!
//! - **E001 — statically-empty relation used in an axiom.** A
//!   sub-expression that provably relates nothing in any execution,
//!   e.g. `0 ; rf` (composition with the empty relation) or `rf ∩ co`
//!   (the intersection of a write→read relation with a write→write
//!   relation — the inferred sorts are disjoint). The constraint it
//!   feeds checks less than it appears to.
//! - **E002 — vacuous axiom.** The axiom provably holds in every
//!   execution, so it can never fail: `acyclic(rf)` (reads-from goes
//!   write→read only, so no cycle is possible), `irreflexive(po)`
//!   (program order is a strict order already), or any axiom over a
//!   statically-empty relation.
//! - **W001 — unused definition.** A def no axiom (transitively)
//!   references, e.g. `dead := rf ∪ co` with no axiom mentioning
//!   `dead`. The lazy evaluator never computes it, so it is dead
//!   weight — and often a sign an axiom forgot an operand.
//! - **W002 — redundant axiom.** Two axioms constrain the *same*
//!   relation (hash-consed, so spelling through a def is seen through)
//!   and one implies the other: `irreflexive(hb)` alongside
//!   `acyclic(hb)` is subsumed, since acyclicity implies
//!   irreflexivity; `empty` implies both.
//! - **W003 — shadow-adjacent name.** A definition one edit away from
//!   a base name, e.g. `po-lok := …` next to the base `po-loc`: a typo
//!   at a use site would silently define or reference the wrong
//!   relation. Names shorter than four characters are exempt.
//! - **W004 — unreachable mapping rows / `Unsupported` holes** (stack
//!   files only, checked by `tricheck-core`'s registry): a mapping row
//!   for an order the compiler can never emit for that op (e.g.
//!   `ld rel = …` — C11 has no release loads), or an op that maps some
//!   orders but leaves a reachable one undefined, so compiling a test
//!   that uses it fails with `Unsupported`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod ir;
pub mod lint;
pub mod parse;

pub use compile::{BindingPool, CompiledModel, EvalScratch, Prelude};
pub use ir::{Axiom, AxiomKind, BaseRelations, ModelIr, RelExpr, SetExpr};
pub use lint::{Diagnostic, LintSchema, Severity};
pub use parse::{parse_model, parse_model_spanned, ModelSpans, ParseError, Vocabulary};

use std::fmt;

/// Maximum number of events a [`Relation`] or [`EventSet`] may range over.
///
/// Litmus tests stay far below this bound (the largest compiled test in the
/// TriCheck suite has 16 events), so a single `u64` row per event suffices.
pub const MAX_EVENTS: usize = 64;

/// A set of event indices drawn from a universe of `n ≤ 64` events.
///
/// Used to restrict relations to classes of events (reads, writes, SC
/// atomics, fences, …).
///
/// # Examples
///
/// ```
/// use tricheck_rel::EventSet;
///
/// let reads = EventSet::from_ids(4, [1, 3]);
/// assert!(reads.contains(3));
/// assert_eq!(reads.len(), 2);
/// let all = EventSet::full(4);
/// assert_eq!(all.minus(reads).len(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventSet {
    n: usize,
    bits: u64,
}

impl EventSet {
    /// Creates an empty set over a universe of `n` events.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_EVENTS`.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        assert!(
            n <= MAX_EVENTS,
            "event universe too large: {n} > {MAX_EVENTS}"
        );
        EventSet { n, bits: 0 }
    }

    /// Creates the full set `{0, …, n-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_EVENTS`.
    #[must_use]
    pub fn full(n: usize) -> Self {
        let mut s = Self::empty(n);
        s.bits = mask(n);
        s
    }

    /// Creates a set from an iterator of event indices.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_EVENTS` or any index is `>= n`.
    #[must_use]
    pub fn from_ids<I: IntoIterator<Item = usize>>(n: usize, ids: I) -> Self {
        let mut s = Self::empty(n);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Returns the size of the universe this set ranges over.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Adds event `id` to the set.
    ///
    /// # Panics
    ///
    /// Panics if `id >= universe()`.
    pub fn insert(&mut self, id: usize) {
        assert!(id < self.n, "event id {id} out of range {}", self.n);
        self.bits |= 1 << id;
    }

    /// Returns `true` if the set contains `id`.
    #[must_use]
    pub fn contains(&self, id: usize) -> bool {
        id < self.n && self.bits & (1 << id) != 0
    }

    /// Returns the number of events in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Returns `true` if the set has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: EventSet) -> EventSet {
        self.check(other);
        EventSet {
            n: self.n,
            bits: self.bits | other.bits,
        }
    }

    /// Set intersection.
    #[must_use]
    pub fn intersect(self, other: EventSet) -> EventSet {
        self.check(other);
        EventSet {
            n: self.n,
            bits: self.bits & other.bits,
        }
    }

    /// Set difference (`self \ other`).
    #[must_use]
    pub fn minus(self, other: EventSet) -> EventSet {
        self.check(other);
        EventSet {
            n: self.n,
            bits: self.bits & !other.bits,
        }
    }

    /// Complement within the universe.
    #[must_use]
    pub fn complement(self) -> EventSet {
        EventSet {
            n: self.n,
            bits: !self.bits & mask(self.n),
        }
    }

    /// Iterates over the member event indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let bits = self.bits;
        (0..self.n).filter(move |i| bits & (1 << i) != 0)
    }

    /// Raw bitmask of the set (bit `i` set iff event `i` is a member).
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    fn check(&self, other: EventSet) {
        assert_eq!(
            self.n, other.n,
            "event set universes differ: {} vs {}",
            self.n, other.n
        );
    }
}

impl fmt::Debug for EventSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

fn mask(n: usize) -> u64 {
    if n == 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// A binary relation over a universe of `n ≤ 64` events.
///
/// Rows are stored as `u64` bitmasks: bit `j` of row `i` is set iff the
/// pair `(i, j)` is in the relation.
///
/// # Examples
///
/// ```
/// use tricheck_rel::Relation;
///
/// let rf = Relation::from_pairs(3, [(0, 2)]);
/// let po = Relation::from_pairs(3, [(2, 1)]);
/// // Relational composition: rf ; po = {0→1}.
/// let comp = rf.compose(&po);
/// assert!(comp.contains(0, 1));
/// assert_eq!(comp.pair_count(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Relation {
    n: usize,
    rows: Vec<u64>,
}

impl Relation {
    /// Creates the empty relation over `n` events.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_EVENTS`.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        assert!(
            n <= MAX_EVENTS,
            "event universe too large: {n} > {MAX_EVENTS}"
        );
        Relation {
            n,
            rows: vec![0; n],
        }
    }

    /// Creates the identity relation `{(i, i)}` over `n` events.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_EVENTS`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut r = Self::empty(n);
        for i in 0..n {
            r.rows[i] = 1 << i;
        }
        r
    }

    /// Creates the full relation (all ordered pairs) over `n` events.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_EVENTS`.
    #[must_use]
    pub fn full(n: usize) -> Self {
        let mut r = Self::empty(n);
        for row in &mut r.rows {
            *row = mask(n);
        }
        r
    }

    /// Creates a relation from an iterator of `(from, to)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_EVENTS` or any index is `>= n`.
    #[must_use]
    pub fn from_pairs<I: IntoIterator<Item = (usize, usize)>>(n: usize, pairs: I) -> Self {
        let mut r = Self::empty(n);
        for (a, b) in pairs {
            r.insert(a, b);
        }
        r
    }

    /// The cross product `dom × rng` as a relation.
    ///
    /// # Panics
    ///
    /// Panics if the two sets range over different universes.
    #[must_use]
    pub fn cross(dom: EventSet, rng: EventSet) -> Self {
        assert_eq!(
            dom.universe(),
            rng.universe(),
            "cross product over mismatched universes"
        );
        let mut r = Self::empty(dom.universe());
        for i in dom.iter() {
            r.rows[i] = rng.bits();
        }
        r
    }

    /// Returns the size of the universe this relation ranges over.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Adds the pair `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `a >= universe()` or `b >= universe()`.
    pub fn insert(&mut self, a: usize, b: usize) {
        assert!(
            a < self.n && b < self.n,
            "pair ({a},{b}) out of range {}",
            self.n
        );
        self.rows[a] |= 1 << b;
    }

    /// Returns `true` if the pair `(a, b)` is in the relation.
    #[must_use]
    pub fn contains(&self, a: usize, b: usize) -> bool {
        a < self.n && b < self.n && self.rows[a] & (1 << b) != 0
    }

    /// Returns `true` if the relation has no pairs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.iter().all(|&r| r == 0)
    }

    /// Number of pairs in the relation.
    #[must_use]
    pub fn pair_count(&self) -> usize {
        self.rows.iter().map(|r| r.count_ones() as usize).sum()
    }

    /// Union of two relations.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn union(&self, other: &Relation) -> Relation {
        self.check(other);
        let rows = self
            .rows
            .iter()
            .zip(&other.rows)
            .map(|(a, b)| a | b)
            .collect();
        Relation { n: self.n, rows }
    }

    /// Intersection of two relations.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn intersect(&self, other: &Relation) -> Relation {
        self.check(other);
        let rows = self
            .rows
            .iter()
            .zip(&other.rows)
            .map(|(a, b)| a & b)
            .collect();
        Relation { n: self.n, rows }
    }

    /// Difference (`self \ other`).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn minus(&self, other: &Relation) -> Relation {
        self.check(other);
        let rows = self
            .rows
            .iter()
            .zip(&other.rows)
            .map(|(a, b)| a & !b)
            .collect();
        Relation { n: self.n, rows }
    }

    /// Relational composition `self ; other` (`(a,c)` iff `∃b. (a,b) ∧ (b,c)`).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn compose(&self, other: &Relation) -> Relation {
        self.check(other);
        let mut out = Relation::empty(self.n);
        for a in 0..self.n {
            let mut row = 0u64;
            let mut mids = self.rows[a];
            while mids != 0 {
                let b = mids.trailing_zeros() as usize;
                mids &= mids - 1;
                row |= other.rows[b];
            }
            out.rows[a] = row;
        }
        out
    }

    /// Inverse relation (`(b, a)` for every `(a, b)`).
    #[must_use]
    pub fn inverse(&self) -> Relation {
        let mut out = Relation::empty(self.n);
        for (a, &row) in self.rows.iter().enumerate() {
            let mut bits = row;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out.rows[b] |= 1 << a;
            }
        }
        out
    }

    /// Transitive closure `self⁺` (one or more steps).
    #[must_use]
    pub fn transitive_closure(&self) -> Relation {
        // Word-parallel repeated squaring: each pass replaces every
        // row's successors with its successors-of-successors as well
        // (R := R ∪ R;R, the union taken 64 columns at a time), so the
        // reachable path length doubles per pass — at most ⌈log₂ n⌉
        // passes instead of Floyd–Warshall's n pivot rounds. Updating
        // in place only accelerates convergence: a row read mid-pass
        // already holds a subset of the closure.
        let mut rows = self.rows.clone();
        loop {
            let mut changed = false;
            for a in 0..self.n {
                let mut row = rows[a];
                let mut mids = row;
                while mids != 0 {
                    let b = mids.trailing_zeros() as usize;
                    mids &= mids - 1;
                    row |= rows[b];
                }
                changed |= row != rows[a];
                rows[a] = row;
            }
            if !changed {
                return Relation { n: self.n, rows };
            }
        }
    }

    /// Reflexive-transitive closure `self*` (zero or more steps).
    #[must_use]
    pub fn reflexive_transitive_closure(&self) -> Relation {
        self.transitive_closure().union(&Relation::identity(self.n))
    }

    /// Reflexive closure `self?` (`self ∪ identity`).
    #[must_use]
    pub fn maybe(&self) -> Relation {
        self.union(&Relation::identity(self.n))
    }

    /// Restricts the relation to pairs with the first component in `dom`
    /// and the second in `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn restrict(&self, dom: EventSet, rng: EventSet) -> Relation {
        assert_eq!(dom.universe(), self.n, "domain universe mismatch");
        assert_eq!(rng.universe(), self.n, "range universe mismatch");
        let mut out = Relation::empty(self.n);
        for i in dom.iter() {
            out.rows[i] = self.rows[i] & rng.bits();
        }
        out
    }

    /// Returns `true` if the relation contains no pair `(a, a)`.
    #[must_use]
    pub fn is_irreflexive(&self) -> bool {
        self.rows
            .iter()
            .enumerate()
            .all(|(i, &row)| row & (1 << i) == 0)
    }

    /// Returns `true` if the relation (viewed as a directed graph) has no
    /// cycle. Equivalent to the transitive closure being irreflexive.
    #[must_use]
    pub fn is_acyclic(&self) -> bool {
        self.transitive_closure().is_irreflexive()
    }

    /// Returns `true` if every pair of `self` is also in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn is_subset_of(&self, other: &Relation) -> bool {
        self.check(other);
        self.rows.iter().zip(&other.rows).all(|(a, b)| a & !b == 0)
    }

    /// Iterates over all pairs `(a, b)` in the relation.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.rows.iter().enumerate().flat_map(move |(a, &row)| {
            (0..self.n).filter_map(move |b| {
                if row & (1 << b) != 0 {
                    Some((a, b))
                } else {
                    None
                }
            })
        })
    }

    /// The set of events with at least one outgoing edge.
    #[must_use]
    pub fn domain(&self) -> EventSet {
        let mut s = EventSet::empty(self.n);
        for (a, &row) in self.rows.iter().enumerate() {
            if row != 0 {
                s.insert(a);
            }
        }
        s
    }

    /// The set of events with at least one incoming edge.
    #[must_use]
    pub fn range(&self) -> EventSet {
        let mut bits = 0u64;
        for &row in &self.rows {
            bits |= row;
        }
        EventSet { n: self.n, bits }
    }

    /// The raw row bitmasks: word `i` holds the successor mask of
    /// event `i`. The slice length is exactly `universe()`.
    ///
    /// This is the bulk-copy interface the columnar execution arenas
    /// build on: a relation's entire edge content is `universe()`
    /// contiguous `u64` words, so appending one to a flat column (or
    /// rehydrating one from a column) is a single `memcpy`-shaped
    /// operation instead of a pair-by-pair rebuild.
    #[must_use]
    pub fn row_words(&self) -> &[u64] {
        &self.rows
    }

    /// Overwrites this relation's rows from a slice of raw row words
    /// (the same layout [`row_words`](Self::row_words) exposes),
    /// without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != universe()`. In debug builds, also
    /// panics if any word sets a bit at or above `universe()`.
    pub fn copy_row_words_from(&mut self, words: &[u64]) {
        assert_eq!(
            words.len(),
            self.n,
            "row word count {} does not match universe {}",
            words.len(),
            self.n
        );
        debug_assert!(
            words.iter().all(|&w| w & !mask(self.n) == 0),
            "row words set bits outside the {}-event universe",
            self.n
        );
        self.rows.copy_from_slice(words);
    }

    /// Builds a relation directly from raw row words, validating that
    /// the length matches `n` and no word addresses an event `>= n`.
    ///
    /// Returns `None` on any mismatch — this is the checked entry
    /// point snapshot decoding uses, where the words come from disk.
    #[must_use]
    pub fn try_from_row_words(n: usize, rows: Vec<u64>) -> Option<Relation> {
        if n > MAX_EVENTS || rows.len() != n || rows.iter().any(|&w| w & !mask(n) != 0) {
            return None;
        }
        Some(Relation { n, rows })
    }

    /// The successors of event `a` as a set.
    ///
    /// # Panics
    ///
    /// Panics if `a >= universe()`.
    #[must_use]
    pub fn successors(&self, a: usize) -> EventSet {
        assert!(a < self.n, "event id {a} out of range {}", self.n);
        EventSet {
            n: self.n,
            bits: self.rows[a],
        }
    }

    /// Returns one linear extension of the relation (a topological order),
    /// or `None` if the relation is cyclic.
    ///
    /// Only events in `universe()` participate; events unrelated to
    /// everything still appear in the output order.
    #[must_use]
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let mut indegree = vec![0usize; self.n];
        for (_, b) in self.pairs() {
            indegree[b] += 1;
        }
        let mut ready: Vec<usize> = (0..self.n).filter(|&i| indegree[i] == 0).collect();
        let mut out = Vec::with_capacity(self.n);
        while let Some(a) = ready.pop() {
            out.push(a);
            let mut bits = self.rows[a];
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                indegree[b] -= 1;
                if indegree[b] == 0 {
                    ready.push(b);
                }
            }
        }
        if out.len() == self.n {
            Some(out)
        } else {
            None
        }
    }

    fn check(&self, other: &Relation) {
        assert_eq!(
            self.n, other.n,
            "relation universes differ: {} vs {}",
            self.n, other.n
        );
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set()
            .entries(self.pairs().map(|(a, b)| format!("{a}->{b}")))
            .finish()
    }
}

/// Enumerates all linear extensions of a strict partial order over the
/// events in `events`, invoking `visit` with each complete order.
///
/// The partial order is given as `precedes`: the extension must place `a`
/// before `b` whenever `precedes.contains(a, b)` and both are in `events`.
/// `visit` may return `false` to stop the enumeration early; the function
/// returns `false` in that case.
///
/// Used to enumerate coherence orders (per-location total store orders) and
/// candidate SC total orders.
///
/// # Examples
///
/// ```
/// use tricheck_rel::{linear_extensions, EventSet, Relation};
///
/// let constraint = Relation::from_pairs(3, [(0, 1)]);
/// let events = EventSet::full(3);
/// let mut count = 0;
/// linear_extensions(events, &constraint, &mut |_order| {
///     count += 1;
///     true
/// });
/// assert_eq!(count, 3); // 3! / 2 orders keep 0 before 1
/// ```
pub fn linear_extensions<F: FnMut(&[usize]) -> bool>(
    events: EventSet,
    precedes: &Relation,
    visit: &mut F,
) -> bool {
    let members: Vec<usize> = events.iter().collect();
    let mut order = Vec::with_capacity(members.len());
    let mut used = EventSet::empty(events.universe());
    extend(&members, precedes, &mut order, &mut used, visit)
}

fn extend<F: FnMut(&[usize]) -> bool>(
    members: &[usize],
    precedes: &Relation,
    order: &mut Vec<usize>,
    used: &mut EventSet,
    visit: &mut F,
) -> bool {
    if order.len() == members.len() {
        return visit(order);
    }
    for &cand in members {
        if used.contains(cand) {
            continue;
        }
        // cand may be placed next iff all its predecessors are already placed.
        let ok = members
            .iter()
            .all(|&m| m == cand || used.contains(m) || !precedes.contains(m, cand));
        if !ok {
            continue;
        }
        used.insert(cand);
        order.push(cand);
        let keep_going = extend(members, precedes, order, used, visit);
        order.pop();
        *used = EventSet::from_ids(used.universe(), order.iter().copied());
        if !keep_going {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_relation_is_acyclic_and_irreflexive() {
        let r = Relation::empty(5);
        assert!(r.is_empty());
        assert!(r.is_acyclic());
        assert!(r.is_irreflexive());
        assert_eq!(r.pair_count(), 0);
    }

    #[test]
    fn identity_is_cyclic_but_reflexive() {
        let id = Relation::identity(3);
        assert!(!id.is_irreflexive());
        assert!(!id.is_acyclic());
        assert_eq!(id.pair_count(), 3);
    }

    #[test]
    fn compose_chains_edges() {
        let a = Relation::from_pairs(4, [(0, 1), (2, 3)]);
        let b = Relation::from_pairs(4, [(1, 2)]);
        let ab = a.compose(&b);
        assert!(ab.contains(0, 2));
        assert_eq!(ab.pair_count(), 1);
    }

    #[test]
    fn closure_of_chain_relates_all_descendants() {
        let r = Relation::from_pairs(4, [(0, 1), (1, 2), (2, 3)]);
        let c = r.transitive_closure();
        for a in 0..4 {
            for b in (a + 1)..4 {
                assert!(c.contains(a, b), "expected {a}->{b} in closure");
            }
        }
        assert!(c.is_acyclic());
    }

    #[test]
    fn cycle_detection() {
        let r = Relation::from_pairs(3, [(0, 1), (1, 2), (2, 0)]);
        assert!(!r.is_acyclic());
        assert!(r.is_irreflexive()); // no self-loop even though cyclic
    }

    #[test]
    fn inverse_swaps_pairs() {
        let r = Relation::from_pairs(3, [(0, 2), (1, 2)]);
        let inv = r.inverse();
        assert!(inv.contains(2, 0));
        assert!(inv.contains(2, 1));
        assert_eq!(inv.pair_count(), 2);
    }

    #[test]
    fn restrict_filters_by_domain_and_range() {
        let r = Relation::full(3);
        let dom = EventSet::from_ids(3, [0]);
        let rng = EventSet::from_ids(3, [1, 2]);
        let restricted = r.restrict(dom, rng);
        assert_eq!(restricted.pair_count(), 2);
        assert!(restricted.contains(0, 1));
        assert!(restricted.contains(0, 2));
        assert!(!restricted.contains(1, 2));
    }

    #[test]
    fn cross_product() {
        let a = EventSet::from_ids(4, [0, 1]);
        let b = EventSet::from_ids(4, [2, 3]);
        let r = Relation::cross(a, b);
        assert_eq!(r.pair_count(), 4);
        assert!(r.contains(1, 3));
        assert!(!r.contains(2, 0));
    }

    #[test]
    fn topological_order_of_dag() {
        let r = Relation::from_pairs(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let order = r.topological_order().expect("dag should have an order");
        let pos = |x: usize| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn topological_order_rejects_cycles() {
        let r = Relation::from_pairs(2, [(0, 1), (1, 0)]);
        assert!(r.topological_order().is_none());
    }

    #[test]
    fn linear_extensions_counts() {
        // No constraints: 3! = 6 orders.
        let mut count = 0;
        linear_extensions(EventSet::full(3), &Relation::empty(3), &mut |_| {
            count += 1;
            true
        });
        assert_eq!(count, 6);

        // Total order constraint: exactly 1 extension.
        let chain = Relation::from_pairs(3, [(0, 1), (1, 2)]);
        let mut count = 0;
        linear_extensions(EventSet::full(3), &chain, &mut |order| {
            assert_eq!(order, &[0, 1, 2]);
            count += 1;
            true
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn linear_extensions_early_stop() {
        let mut count = 0;
        let finished = linear_extensions(EventSet::full(4), &Relation::empty(4), &mut |_| {
            count += 1;
            count < 3
        });
        assert!(!finished);
        assert_eq!(count, 3);
    }

    #[test]
    fn event_set_ops() {
        let a = EventSet::from_ids(5, [0, 1, 2]);
        let b = EventSet::from_ids(5, [2, 3]);
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersect(b).len(), 1);
        assert_eq!(a.minus(b).len(), 2);
        assert_eq!(a.complement().len(), 2);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut r = Relation::empty(2);
        r.insert(0, 2);
    }

    #[test]
    #[should_panic(expected = "universes differ")]
    fn mismatched_universe_panics() {
        let a = Relation::empty(2);
        let b = Relation::empty(3);
        let _ = a.union(&b);
    }
}
