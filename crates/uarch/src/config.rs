//! Microarchitecture configuration: the relaxation knobs of the paper's
//! Table 7 models and the §5 ISA-refinement switches.

use std::fmt;

use tricheck_isa::SpecVersion;

/// The store-atomicity class of a model (§2.3.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StoreAtomicity {
    /// Multi-copy atomic: all cores (including the writer) observe a store
    /// at the same instant. No store-buffer forwarding.
    Mca,
    /// Read-own-write-early MCA: the writer may forward from its private
    /// store buffer, but remote cores agree on visibility.
    RMca,
    /// Non-multi-copy atomic: stores may reach some remote cores before
    /// others (shared store buffers or non-stalling coherence).
    NMca,
}

/// Which earlier events a release operation publishes (§5.2.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ReleasePredecessors {
    /// `riscv-curr`: only the releasing thread's program-order
    /// predecessors (non-cumulative release).
    ProgramOrder,
    /// `riscv-ours`: everything that happens-before the release, including
    /// writes the releasing core observed (cumulative release).
    HappensBefore,
}

/// The full relaxation/refinement configuration of one microarchitecture
/// model evaluated against one ISA specification version.
///
/// Build the paper's models through the constructors on
/// [`crate::UarchModel`]; custom configurations support the paper's
/// "iterative design" workflow (changing one knob and re-running
/// TriCheck).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UarchConfig {
    /// Display name, e.g. `"nMM/riscv-curr"`.
    pub name: String,
    /// Relax W→W program order (out-of-order store-buffer drain).
    pub relax_ww: bool,
    /// Relax R→R and R→W program order (out-of-order read commit).
    pub relax_rm: bool,
    /// Store atomicity class.
    pub atomicity: StoreAtomicity,
    /// Enforce same-address load→load program order (§5.1.3; `false` for
    /// `riscv-curr`, `true` for `riscv-ours`).
    pub same_addr_rr_ordered: bool,
    /// Writes of SC-annotated AMOs are globally visible to any reader
    /// (`true` on A9like, whose non-stalling directory protocol completes
    /// AMOs with all invalidations acknowledged; `false` on the
    /// shared-store-buffer models, which only serialize SC AMOs against
    /// each other via the global SC-AMO order).
    pub sc_amo_writes_globally_visible: bool,
    /// What a release publishes (§5.2.1).
    pub release_predecessors: ReleasePredecessors,
    /// `riscv-curr`: a release synchronizes with *any* load that reads it;
    /// `riscv-ours`: only with acquire operations (lazy cumulativity,
    /// §5.2.3). Lazy is weaker, permitting lazy coherence implementations.
    pub release_sync_any_load: bool,
}

impl UarchConfig {
    /// The refinement knobs implied by an ISA specification version.
    fn apply_version(&mut self, version: SpecVersion) {
        match version {
            SpecVersion::Curr => {
                self.same_addr_rr_ordered = false;
                self.release_predecessors = ReleasePredecessors::ProgramOrder;
                self.release_sync_any_load = true;
            }
            SpecVersion::Ours => {
                self.same_addr_rr_ordered = true;
                self.release_predecessors = ReleasePredecessors::HappensBefore;
                self.release_sync_any_load = false;
            }
        }
    }

    fn base(name: &str, relax_ww: bool, relax_rm: bool, atomicity: StoreAtomicity) -> Self {
        UarchConfig {
            name: name.to_string(),
            relax_ww,
            relax_rm,
            atomicity,
            same_addr_rr_ordered: false,
            sc_amo_writes_globally_visible: false,
            release_predecessors: ReleasePredecessors::ProgramOrder,
            release_sync_any_load: true,
        }
    }

    /// Table 7 `WR`: FIFO store buffer, no forwarding.
    #[must_use]
    pub fn wr(version: SpecVersion) -> Self {
        let mut c = Self::base("WR", false, false, StoreAtomicity::Mca);
        c.apply_version(version);
        c.name = format!("WR/{version}");
        c
    }

    /// Table 7 `rWR`: FIFO store buffer with value forwarding.
    #[must_use]
    pub fn rwr(version: SpecVersion) -> Self {
        let mut c = Self::base("rWR", false, false, StoreAtomicity::RMca);
        c.apply_version(version);
        c.name = format!("rWR/{version}");
        c
    }

    /// Table 7 `rWM`: out-of-order store-buffer drain.
    #[must_use]
    pub fn rwm(version: SpecVersion) -> Self {
        let mut c = Self::base("rWM", true, false, StoreAtomicity::RMca);
        c.apply_version(version);
        c.name = format!("rWM/{version}");
        c
    }

    /// Table 7 `rMM`: additionally commits reads out of order.
    #[must_use]
    pub fn rmm(version: SpecVersion) -> Self {
        let mut c = Self::base("rMM", true, true, StoreAtomicity::RMca);
        c.apply_version(version);
        c.name = format!("rMM/{version}");
        c
    }

    /// Table 7 `nWR`: `rWR` with store buffers shared between cores
    /// (non-MCA).
    #[must_use]
    pub fn nwr(version: SpecVersion) -> Self {
        let mut c = Self::base("nWR", false, false, StoreAtomicity::NMca);
        c.apply_version(version);
        c.name = format!("nWR/{version}");
        c
    }

    /// Table 7 `nMM`: `rMM` with shared store buffers (non-MCA).
    #[must_use]
    pub fn nmm(version: SpecVersion) -> Self {
        let mut c = Self::base("nMM", true, true, StoreAtomicity::NMca);
        c.apply_version(version);
        c.name = format!("nMM/{version}");
        c
    }

    /// Table 7 `A9like`: write-back caches with a non-stalling directory
    /// protocol — non-MCA plain stores, but AMO completion is globally
    /// visible (§4.3 point 7).
    #[must_use]
    pub fn a9like(version: SpecVersion) -> Self {
        let mut c = Self::base("A9like", true, true, StoreAtomicity::NMca);
        c.sc_amo_writes_globally_visible = true;
        c.apply_version(version);
        c.name = format!("A9like/{version}");
        c
    }

    /// An ARMv7-A9-like machine for the §7 compiler study: same
    /// relaxations as `A9like`, cumulative `dmb`/`sync` fences (carried by
    /// the fence annotations), and ISA-compliant same-address load→load
    /// ordering.
    #[must_use]
    pub fn armv7_a9like() -> Self {
        let mut c = Self::base("ARMv7-A9like", true, true, StoreAtomicity::NMca);
        c.sc_amo_writes_globally_visible = true;
        c.same_addr_rr_ordered = true;
        c.name = "ARMv7-A9like".to_string();
        c
    }

    /// The ARMv7-A9 with the read-after-read hazard of the paper's §1–§2:
    /// identical to [`UarchConfig::armv7_a9like`] but with same-address
    /// load→load ordering relaxed, reproducing the acknowledged Cortex-A9
    /// bug (ARM reference 761319).
    #[must_use]
    pub fn armv7_a9_ldld_hazard() -> Self {
        let mut c = Self::armv7_a9like();
        c.same_addr_rr_ordered = false;
        c.name = "ARMv7-A9-ldld-hazard".to_string();
        c
    }

    /// The ARMv7 microarchitectures of the §7 compiler study: the
    /// ISA-compliant A9-like machine first, then the load→load-hazard
    /// variant that reproduces the Cortex-A9 erratum.
    #[must_use]
    pub fn all_armv7() -> Vec<Self> {
        vec![Self::armv7_a9like(), Self::armv7_a9_ldld_hazard()]
    }

    /// All seven Table 7 models for one specification version, in the
    /// paper's presentation order.
    #[must_use]
    pub fn all_riscv(version: SpecVersion) -> Vec<Self> {
        vec![
            Self::wr(version),
            Self::rwr(version),
            Self::rwm(version),
            Self::rmm(version),
            Self::nwr(version),
            Self::nmm(version),
            Self::a9like(version),
        ]
    }
}

impl fmt::Display for UarchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_relaxation_matrix() {
        use SpecVersion::Curr;
        let rows: Vec<(String, bool, bool, StoreAtomicity)> = UarchConfig::all_riscv(Curr)
            .into_iter()
            .map(|c| (c.name.clone(), c.relax_ww, c.relax_rm, c.atomicity))
            .collect();
        assert_eq!(rows.len(), 7);
        assert_eq!(
            rows[0],
            ("WR/riscv-curr".into(), false, false, StoreAtomicity::Mca)
        );
        assert_eq!(
            rows[1],
            ("rWR/riscv-curr".into(), false, false, StoreAtomicity::RMca)
        );
        assert_eq!(
            rows[2],
            ("rWM/riscv-curr".into(), true, false, StoreAtomicity::RMca)
        );
        assert_eq!(
            rows[3],
            ("rMM/riscv-curr".into(), true, true, StoreAtomicity::RMca)
        );
        assert_eq!(
            rows[4],
            ("nWR/riscv-curr".into(), false, false, StoreAtomicity::NMca)
        );
        assert_eq!(
            rows[5],
            ("nMM/riscv-curr".into(), true, true, StoreAtomicity::NMca)
        );
        assert_eq!(
            rows[6],
            ("A9like/riscv-curr".into(), true, true, StoreAtomicity::NMca)
        );
    }

    #[test]
    fn version_knobs() {
        let curr = UarchConfig::nmm(SpecVersion::Curr);
        assert!(!curr.same_addr_rr_ordered);
        assert!(curr.release_sync_any_load);
        assert_eq!(curr.release_predecessors, ReleasePredecessors::ProgramOrder);

        let ours = UarchConfig::nmm(SpecVersion::Ours);
        assert!(ours.same_addr_rr_ordered);
        assert!(!ours.release_sync_any_load);
        assert_eq!(
            ours.release_predecessors,
            ReleasePredecessors::HappensBefore
        );
    }

    #[test]
    fn a9like_differs_from_nmm_only_in_amo_visibility() {
        let a9 = UarchConfig::a9like(SpecVersion::Curr);
        let nmm = UarchConfig::nmm(SpecVersion::Curr);
        assert!(a9.sc_amo_writes_globally_visible);
        assert!(!nmm.sc_amo_writes_globally_visible);
        assert_eq!(a9.relax_ww, nmm.relax_ww);
        assert_eq!(a9.relax_rm, nmm.relax_rm);
        assert_eq!(a9.atomicity, nmm.atomicity);
    }

    #[test]
    fn hazard_model_relaxes_same_address_reads() {
        assert!(UarchConfig::armv7_a9like().same_addr_rr_ordered);
        assert!(!UarchConfig::armv7_a9_ldld_hazard().same_addr_rr_ordered);
    }
}
